package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

// appendedModel extends m's table by extra random rows (through the
// copy-on-write append, so the extended TID index rides along) and
// re-mines it with m's own config — the ground-truth next generation.
func appendedModel(t *testing.T, m *core.Model, seed int64, extra int) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := m.Table.NumAttrs()
	rows := make([][]table.Value, extra)
	for i := range rows {
		base := table.Value(1 + rng.Intn(3))
		rows[i] = make([]table.Value, n)
		for j := range rows[i] {
			if rng.Intn(3) == 0 {
				rows[i][j] = table.Value(1 + rng.Intn(3))
			} else {
				rows[i][j] = base
			}
		}
	}
	nt, err := m.Table.AppendRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	next, err := core.Build(nt, m.Config)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// answers snapshots one of every query kind; used to compare a
// carried-forward engine against a fresh one over the same model.
type answers struct {
	rules []core.ScoredRule
	sim   float64
	dom   DominatorsResponse
	cls   int
	conf  float64
}

func queryAll(t *testing.T, e *Engine) answers {
	t.Helper()
	ctx := context.Background()
	var a answers
	var err error
	if a.rules, err = e.Rules(ctx, 0, core.MineOptions{MaxRules: 8}); err != nil {
		t.Fatal(err)
	}
	g, err := e.SimilarityGraph(ctx)
	if err != nil {
		t.Fatal(err)
	}
	a.sim = g.Dist(0, 1)
	resp, err := e.Do(ctx, &Request{Dominators: &DominatorsRequest{}})
	if err != nil {
		t.Fatal(err)
	}
	a.dom = *resp.Dominators
	if len(a.dom.Targets) == 0 {
		t.Fatal("dominator covers no targets; classify would be unavailable")
	}
	values := make(map[string]int, len(a.dom.Dominator))
	for _, attr := range a.dom.Dominator {
		values[attr] = 2
	}
	cresp, err := e.Do(ctx, &Request{Classify: &ClassifyRequest{
		Target: a.dom.Targets[0],
		Values: values,
	}})
	if err != nil {
		t.Fatal(err)
	}
	a.cls = *cresp.Classify.Value
	a.conf = *cresp.Classify.Confidence
	return a
}

// TestNewFromPreviousPrimesIndex: after a real append the next
// generation's engine must start with the extended TID index already
// warm (zero index builds) and answer every query kind exactly like a
// fresh engine over the same model.
func TestNewFromPreviousPrimesIndex(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 31, 10, 300, 0)
	prev := newEngine(t, m, Options{})
	if err := prev.Warmup(ctx, WarmupAll); err != nil {
		t.Fatal(err)
	}
	next := appendedModel(t, m, 32, 40)
	if next.Table.IndexIfBuilt() == nil {
		t.Fatal("append did not carry the extended index")
	}

	e, err := NewFromPrevious(prev, next, false)
	if err != nil {
		t.Fatal(err)
	}
	ix, ixErr := e.Index(ctx)
	if ixErr != nil {
		t.Fatal(ixErr)
	}
	if ix != next.Table.IndexIfBuilt() {
		t.Error("primed index is not the appended table's extended index")
	}
	if got := e.Stats().IndexBuilds; got != 0 {
		t.Errorf("IndexBuilds = %d after priming, want 0", got)
	}
	fresh := newEngine(t, next, Options{})
	if got, want := queryAll(t, e), queryAll(t, fresh); !reflect.DeepEqual(got, want) {
		t.Errorf("carried engine answers differ from fresh engine:\ngot  %+v\nwant %+v", got, want)
	}
	if got := e.Stats().IndexBuilds; got != 0 {
		t.Errorf("IndexBuilds = %d after queries, want 0 (primed)", got)
	}
}

// TestNewFromPreviousUnchangedCarriesEverything: a no-op publish keeps
// every derived artifact — the new engine answers all default-spec
// queries without building anything.
func TestNewFromPreviousUnchangedCarriesEverything(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 33, 10, 300, 0)
	prev := newEngine(t, m, Options{})
	if err := prev.Warmup(ctx, WarmupAll); err != nil {
		t.Fatal(err)
	}
	want := queryAll(t, prev)

	e, err := NewFromPrevious(prev, m, true)
	if err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, e)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("unchanged carry answers differ:\ngot  %+v\nwant %+v", got, want)
	}
	st := e.Stats()
	if st.IndexBuilds+st.SimilarityBuilds+st.DominatorBuilds+st.ClassifierBuilds != 0 {
		t.Errorf("unchanged carry still built artifacts: %+v", st)
	}
}

// TestRewarmFromPrevious: rewarming rebuilds exactly the artifact set
// that was warm before the append — a hot model stays hot (subsequent
// queries build nothing), a cold model stays cold (rewarm builds
// nothing).
func TestRewarmFromPrevious(t *testing.T) {
	ctx := context.Background()
	m := testModel(t, 35, 10, 300, 0)
	next := appendedModel(t, m, 36, 25)

	t.Run("hot stays hot", func(t *testing.T) {
		prev := newEngine(t, m, Options{})
		if err := prev.Warmup(ctx, WarmupAll); err != nil {
			t.Fatal(err)
		}
		e, err := NewFromPrevious(prev, next, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RewarmFromPrevious(ctx, prev); err != nil {
			t.Fatal(err)
		}
		before := e.Stats()
		queryAll(t, e)
		after := e.Stats()
		if before.IndexBuilds != after.IndexBuilds ||
			before.SimilarityBuilds != after.SimilarityBuilds ||
			before.DominatorBuilds != after.DominatorBuilds ||
			before.ClassifierBuilds != after.ClassifierBuilds {
			t.Errorf("queries built artifacts after rewarm: before %+v after %+v", before, after)
		}
	})

	t.Run("cold stays cold", func(t *testing.T) {
		prev := newEngine(t, m, Options{}) // never queried, nothing warm
		e, err := NewFromPrevious(prev, next, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RewarmFromPrevious(ctx, prev); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.SimilarityBuilds+st.DominatorBuilds+st.ClassifierBuilds != 0 {
			t.Errorf("rewarm of a cold engine built artifacts: %+v", st)
		}
	})
}

// TestNewFromPreviousRequiresPrev pins the nil-prev error.
func TestNewFromPreviousRequiresPrev(t *testing.T) {
	m := testModel(t, 37, 6, 100, 0)
	if _, err := NewFromPrevious(nil, m, false); err == nil {
		t.Fatal("NewFromPrevious(nil, ...) succeeded")
	}
}
