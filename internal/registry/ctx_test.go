package registry

import (
	"context"
	"errors"
	"testing"
)

// TestLoadContextCancel proves a canceled LoadContext aborts the
// served-model preparation with ctx.Err() and publishes nothing — an
// aborted snapshot upload must not leave a half-registered model.
func TestLoadContextCancel(t *testing.T) {
	m := testModel(t, 7, 12, 400)
	r := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	info, err := r.LoadContext(ctx, "m", m)
	if info != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want (nil, Canceled), got (%v, %v)", info, err)
	}
	if got := r.Acquire("m"); got != nil {
		got.Release()
		t.Fatal("canceled LoadContext published a model")
	}
	if names := r.Names(); len(names) != 0 {
		t.Fatalf("registry not empty after canceled load: %v", names)
	}
	// The same registry still accepts an uncanceled load afterwards.
	if _, err := r.LoadContext(context.Background(), "m", m); err != nil {
		t.Fatal(err)
	}
	s := r.Acquire("m")
	if s == nil {
		t.Fatal("model missing after successful load")
	}
	s.Release()
}
