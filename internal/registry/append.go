// Incremental append: the registry face of internal/delta. An append
// delta-updates the named model's live dataset and publishes the
// result as a new generation under the same retire-and-drain swap a
// Load uses, so queries in flight on the old generation finish on the
// old generation and every response is attributable to exactly one
// generation (surfaced as the X-Model-Generation header by the
// server).
package registry

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/delta"
	"hypermine/internal/engine"
	"hypermine/internal/table"
)

// ErrNotFound reports an append against a name the registry does not
// serve.
var ErrNotFound = errors.New("registry: model not found")

// ErrConflict reports an append that lost an admin race: the model was
// reloaded or removed while the delta was being prepared. The append
// is not published; the caller may retry against the new generation.
var ErrConflict = errors.New("registry: model changed during append")

// AppendInfo reports the outcome of an append.
type AppendInfo struct {
	Name string
	// Generation serves the appended data: a fresh generation for a
	// real append, the current one for a no-op.
	Generation int64
	// Appended counts the observations added; Rows and Edges describe
	// the serving model afterwards.
	Appended int
	Rows     int
	Edges    int
	// Swapped reports that a new generation was published (false for
	// no-op appends).
	Swapped bool
	// SharedEdges and FullRebuild surface delta.Changes for logs.
	SharedEdges int
	FullRebuild bool
	// Evicted lists models the resident-cost bound pushed out.
	Evicted []string
}

// AppendRows appends row-major observations to the named model; see
// AppendRowsContext.
func (r *Registry) AppendRows(name string, rows [][]table.Value) (*AppendInfo, error) {
	return r.AppendRowsContext(context.Background(), name, rows)
}

// AppendRowsContext appends observations to the named model's live
// dataset, delta-updates the model, and publishes it as a new
// generation. Appends on one name serialize; queries never block — the
// old generation keeps serving until the swap, then drains. On any
// error nothing is published and the serving model is unchanged.
func (r *Registry) AppendRowsContext(ctx context.Context, name string, rows [][]table.Value) (*AppendInfo, error) {
	return r.appendContext(ctx, name, func(ds *delta.Dataset) (*core.Model, delta.Changes, error) {
		return ds.AppendRowsContext(ctx, rows)
	})
}

// AppendRawContext is AppendRowsContext for column-major raw bytes
// (cols[j] holds the appended values of attribute j, one byte per
// cell).
func (r *Registry) AppendRawContext(ctx context.Context, name string, cols [][]byte) (*AppendInfo, error) {
	return r.appendContext(ctx, name, func(ds *delta.Dataset) (*core.Model, delta.Changes, error) {
		return ds.AppendRawContext(ctx, cols)
	})
}

func (r *Registry) appendContext(ctx context.Context, name string, apply func(*delta.Dataset) (*core.Model, delta.Changes, error)) (*AppendInfo, error) {
	if name == "" {
		return nil, errors.New("registry: empty model name")
	}
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}

	// Serialize appends per name. The dataset's joint counts advance
	// monotonically with the published models, so two appends must not
	// interleave; queries and other models are unaffected.
	e.appendMu.Lock()
	defer e.appendMu.Unlock()

	s := e.cur.Load()
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	start := time.Now()
	if e.ds == nil || e.ds.Model() != s.Model() {
		// First append on this name, or the model was hot-swapped by a
		// Load since: (re)seed the live dataset from the serving model.
		ds, err := delta.NewContext(ctx, s.Model(), delta.Options{})
		if err != nil {
			return nil, err
		}
		e.ds = ds
	}
	m, ch, err := apply(e.ds)
	if err != nil {
		return nil, err
	}
	info := &AppendInfo{
		Name:        name,
		Appended:    ch.Appended,
		SharedEdges: ch.SharedEdges,
		FullRebuild: ch.FullRebuild,
	}
	if ch.Unchanged() {
		// Nothing changed: the serving generation already answers for
		// the (identical) concatenated table.
		info.Generation = s.gen
		info.Rows = m.Table.NumRows()
		info.Edges = m.H.NumEdges()
		return info, nil
	}

	// Prepare the next generation outside all registry locks: carry
	// the extended TID index, then restore the old engine's warmth so
	// republish cost — not first-query latency — absorbs the rebuilds.
	eng, err := engine.NewFromPrevious(s.Engine(), m, false)
	if err != nil {
		return nil, err
	}
	if err := eng.RewarmFromPrevious(ctx, s.Engine()); err != nil {
		return nil, err
	}
	if err := eng.Warmup(ctx, r.opt.Warmup); err != nil {
		return nil, err
	}
	next := &Served{
		name:     name,
		gen:      r.gen.Add(1),
		eng:      eng,
		loadedAt: time.Now(),
	}

	r.mu.Lock()
	if r.entries[name] != e || e.cur.Load() != s {
		// A Load or Remove won the race while the delta was prepared;
		// publishing now would serve stale data over the newer admin
		// action. The dataset has advanced past the published model, so
		// the next append reseeds.
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrConflict, name)
	}
	e.cur.Store(next)
	e.lastUsed.Store(r.clock.Add(1))
	evictedNames, drains := r.evictOverBoundLocked(name)
	r.mu.Unlock()

	r.swaps.Add(1)
	drain(s)
	//hyperlint:ignore ctxpoll
	for _, d := range drains {
		drain(d)
	}
	r.notifyEvicted(evictedNames, drains)
	for _, victim := range evictedNames {
		r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model evicted",
			slog.String("model", victim), slog.String("by", name))
	}
	info.Generation = next.gen
	info.Rows = m.Table.NumRows()
	info.Edges = m.H.NumEdges()
	info.Swapped = true
	info.Evicted = evictedNames
	r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model appended",
		slog.String("model", name),
		slog.Int64("generation", next.gen),
		slog.Int("appended", ch.Appended),
		slog.Int("rows", info.Rows),
		slog.Int("edges", info.Edges),
		slog.Int("shared_edges", ch.SharedEdges),
		slog.Bool("full_rebuild", ch.FullRebuild),
		slog.Duration("duration", time.Since(start)))
	return info, nil
}
