package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hypermine/internal/testutil"
)

// TestNoGoroutineLeakAfterChurn is the goleak-style check mirroring
// the server suite's: a burst of concurrent loads, hot swaps,
// acquisitions, and removals — the full drain/evict machinery — must
// leave the goroutine count at its pre-burst baseline, with every
// drained snapshot released.
func TestNoGoroutineLeakAfterChurn(t *testing.T) {
	m := testModel(t, 17, 8, 300)
	baseline := testutil.GoroutineBaseline()

	reg := New(Options{MaxResidentEdges: len(m.H.Edges()) * 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", i%3)
			for j := 0; j < 5; j++ {
				if _, err := reg.Load(name, m); err != nil {
					t.Errorf("load %s: %v", name, err)
					return
				}
				if s := reg.Acquire(name); s != nil {
					s.CountQuery()
					s.Release()
				}
				if i%2 == 0 && j == 3 {
					reg.Remove(name)
				}
			}
		}(i)
	}
	wg.Wait()

	// The registry must still serve after the churn...
	if _, err := reg.Load("final", m); err != nil {
		t.Fatalf("load after churn: %v", err)
	}
	if s := reg.Acquire("final"); s == nil {
		t.Fatal("acquire after churn: nil")
	} else {
		s.Release()
	}
	// ...and the drain/evict machinery must not strand goroutines.
	testutil.CheckGoroutines(t.Fatalf, baseline, 0, 5*time.Second)
}
