package registry

import (
	"context"
	"testing"
)

// TestLoadGenerationContext pins the replication-publish contract:
// explicit generations publish verbatim, stale deliveries are skipped
// idempotently, and the local counter is raised past everything seen.
func TestLoadGenerationContext(t *testing.T) {
	ctx := context.Background()
	r := New(Options{})
	m := testModel(t, 1, 8, 200)

	// Publish under an explicit generation on a fresh name.
	info, err := r.LoadGenerationContext(ctx, "m", m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stale || info.Generation != 7 || info.Swapped {
		t.Fatalf("fresh explicit publish: %+v", info)
	}
	s := r.Acquire("m")
	if s == nil || s.Generation() != 7 {
		t.Fatalf("served generation = %v, want 7", s)
	}
	s.Release()

	// A stale (equal) redelivery is skipped without publishing.
	info, err = r.LoadGenerationContext(ctx, "m", testModel(t, 2, 8, 200), 7)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Stale || info.Generation != 7 {
		t.Fatalf("equal-generation redelivery: %+v", info)
	}
	// ...and so is an older one.
	info, err = r.LoadGenerationContext(ctx, "m", testModel(t, 3, 8, 200), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Stale || info.Generation != 7 {
		t.Fatalf("older-generation redelivery: %+v", info)
	}

	// A newer generation swaps the old one out.
	m2 := testModel(t, 4, 8, 220)
	info, err = r.LoadGenerationContext(ctx, "m", m2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stale || info.Generation != 9 || !info.Swapped {
		t.Fatalf("newer-generation publish: %+v", info)
	}

	// The registry-wide counter was raised past 9: the next local load
	// must number strictly above every replicated generation.
	li, err := r.Load("other", testModel(t, 5, 8, 200))
	if err != nil {
		t.Fatal(err)
	}
	if li.Generation <= 9 {
		t.Fatalf("local load after replication at gen 9 got gen %d, want > 9", li.Generation)
	}

	// Explicit generations must be positive.
	if _, err := r.LoadGenerationContext(ctx, "m", m, 0); err == nil {
		t.Fatal("gen 0 accepted")
	}
}
