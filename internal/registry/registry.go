// Package registry implements the serving-side model registry of the
// hypermined daemon: a set of named, immutable served models with
// lock-free reads, atomic hot swap, and LRU eviction bounded by
// resident cost.
//
// Since the engine redesign, a Served is a thin lifecycle wrapper
// around an engine.Engine: the registry contributes naming, hot swap,
// refcounting, and eviction, while every derived artifact (dominator,
// classifier + predictor pool, similarity graph, rule cache) lives in
// the Engine and is built lazily on first use — loading a model that
// will only ever answer rules queries no longer pays for the
// similarity graph and classifier. The pre-engine "fully prepared at
// load" behavior is available as an opt-in warmup policy
// (Options.Warmup, engine.WarmupAll).
//
// Concurrency model. Every name maps to an entry holding an
// atomic.Pointer[Served]. Readers Acquire (pointer load + refcount
// increment, no locks), query the immutable Served, and Release.
// Admin operations (Load, Remove) take the registry mutex, publish a
// new Served with a single pointer store, then drain the old one:
// mark it retired and wait for in-flight readers to finish. Because a
// Served's engine memoizes immutable artifacts, a reader that raced a
// swap can safely finish its query on the retired model; Acquire
// never returns a retired model, so the drain terminates.
package registry

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hypermine/internal/classify"
	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/delta"
	"hypermine/internal/engine"
	"hypermine/internal/similarity"
)

// Options tunes a Registry.
type Options struct {
	// MaxResidentEdges bounds the total resident cost of loaded
	// models, in edge-equivalent units: each model is charged its
	// hyperedge count plus the converted size of every derived
	// artifact its engine has built (similarity matrix, classifier,
	// rule cache — see engine.Engine.ResidentCost). 0 means unlimited.
	// When a Load pushes the total over the bound, least-recently-used
	// models are evicted (never the one being loaded) until the total
	// fits or nothing else remains.
	MaxResidentEdges int
	// Warmup selects which derived artifacts Load builds eagerly
	// before publishing. The zero value keeps models fully lazy;
	// engine.WarmupAll restores the pre-engine prepare-everything
	// behavior for latency-critical serving.
	Warmup engine.Warmup
	// LoadHook, when set, observes the outcome of every load attempt:
	// err is nil on a successful publish and the preparation error
	// otherwise. Context cancellation is not reported — an aborted
	// upload says nothing about the model itself. The hook runs outside
	// registry locks; the serving layer uses it to feed per-model
	// circuit breakers (a model that cannot even load should trip open,
	// a fresh successful load deserves a clean slate).
	LoadHook func(name string, err error)
	// Logger, when set, receives structured lifecycle events (model
	// loaded / swapped / evicted / removed, failed loads). Nil discards.
	Logger *slog.Logger
}

// Served is one immutable serving model: an engine.Engine plus the
// registry's lifecycle state (name, generation, refcount, retirement).
// Derived-artifact accessors delegate to the engine and build lazily;
// they are safe from any number of goroutines.
type Served struct {
	name     string
	gen      int64 // registry-wide load generation, for observability
	eng      *engine.Engine
	loadedAt time.Time
	refs     atomic.Int64
	retired  atomic.Bool
	queries  atomic.Int64
}

// Name returns the registry name the model is served under.
func (s *Served) Name() string { return s.name }

// Generation returns the registry-wide load generation of this model
// (monotonically increasing across Loads; a reload bumps it).
func (s *Served) Generation() int64 { return s.gen }

// Engine returns the prepared-model query engine. All query traffic
// should go through it (Engine.Do or the typed methods).
func (s *Served) Engine() *engine.Engine { return s.eng }

// Model returns the underlying immutable model.
func (s *Served) Model() *core.Model { return s.eng.Model() }

// LoadedAt returns when the model was published.
func (s *Served) LoadedAt() time.Time { return s.loadedAt }

// Dominator returns the serving dominator result, building it on
// first use; nil only if the build failed.
func (s *Served) Dominator() *cover.Result {
	res, err := s.eng.Dominator(context.Background(), engine.DefaultDomSpec())
	if err != nil {
		return nil
	}
	return res
}

// Targets returns the classifiable target attributes (covered by the
// dominator, not inside it), in ascending order; nil if derivation
// failed.
func (s *Served) Targets() []int {
	targets, err := s.eng.Targets(context.Background())
	if err != nil {
		return nil
	}
	return targets
}

// Classifier returns the prepared ABC, building it on first use, or
// an error explaining why classification is unavailable on this model
// (row-less snapshot, or a dominator covering no targets).
func (s *Served) Classifier() (*classify.ABC, error) {
	return s.eng.Classifier(context.Background())
}

// SimilarityGraph returns the all-vertices similarity graph, building
// it on first use; nil only if the build failed.
func (s *Served) SimilarityGraph() *similarity.Graph {
	g, err := s.eng.SimilarityGraph(context.Background())
	if err != nil {
		return nil
	}
	return g
}

// Queries returns how many queries have been counted on this model.
func (s *Served) Queries() int64 { return s.queries.Load() }

// CountQuery increments the model's query counter.
func (s *Served) CountQuery() { s.queries.Add(1) }

// BorrowPredictor takes a scratch-reusing predictor from the engine's
// pool; pair with ReturnPredictor. The steady-state borrow performs no
// heap allocation once the pool is warm.
//
//hyper:noalloc
func (s *Served) BorrowPredictor() (*classify.Predictor, error) {
	return s.eng.BorrowPredictor(context.Background())
}

// ReturnPredictor puts a borrowed predictor back in the pool.
func (s *Served) ReturnPredictor(p *classify.Predictor) {
	s.eng.ReturnPredictor(context.Background(), p)
}

// Release ends an Acquire. The Served must not be used afterwards.
//
//hyper:noalloc
func (s *Served) Release() { s.refs.Add(-1) }

type entry struct {
	cur      atomic.Pointer[Served]
	lastUsed atomic.Int64

	// appendMu serializes appends on this name; ds is the live-dataset
	// state behind AppendContext (guarded by appendMu). A Load or
	// Remove does not touch ds — the append path notices the published
	// model moved out from under the dataset and reseeds.
	appendMu sync.Mutex
	ds       *delta.Dataset
}

// Registry is the named model registry. The zero value is not usable;
// construct with New.
type Registry struct {
	opt     Options
	mu      sync.RWMutex // guards entries map shape; admin ops take it exclusively
	entries map[string]*entry
	clock   atomic.Int64 // logical LRU clock, bumped on every Acquire
	gen     atomic.Int64 // load generation counter
	swaps   atomic.Int64
	evicted atomic.Int64

	// evictHook (set via OnEvict) observes LRU evictions with the
	// evicted model's generation; it runs outside registry locks.
	evictHook atomic.Pointer[func(name string, gen int64)]
}

// OnEvict registers fn to be called with the name and generation of
// every model the resident-cost bound evicts. The fleet layer uses it
// to stop gossip from re-pulling a model the LRU just dropped (which
// would thrash the bound forever). fn runs outside registry locks and
// must not block; a nil fn clears the hook.
func (r *Registry) OnEvict(fn func(name string, gen int64)) {
	if fn == nil {
		r.evictHook.Store(nil)
		return
	}
	r.evictHook.Store(&fn)
}

// notifyEvicted fans one load's evictions out to the eviction hook.
// names and drains are the paired slices evictOverBoundLocked returns.
func (r *Registry) notifyEvicted(names []string, drains []*Served) {
	hook := r.evictHook.Load()
	if hook == nil || len(names) == 0 {
		return
	}
	for i, name := range names {
		(*hook)(name, drains[i].gen)
	}
}

// New returns an empty registry.
func New(opt Options) *Registry {
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.DiscardHandler)
	}
	return &Registry{opt: opt, entries: make(map[string]*entry)}
}

// buildServed wraps a model in an Engine outside any lock and applies
// the configured warmup policy. Cancelling ctx aborts the warmup
// promptly with nothing published; with a lazy policy the only ctx
// sensitivity is the explicit check (wrapping a model is cheap).
// gen <= 0 assigns the next registry-wide generation; a positive gen
// is used verbatim (replication publishes under the originating node's
// generation so X-Model-Generation stays coherent fleet-wide).
func (r *Registry) buildServed(ctx context.Context, name string, m *core.Model, gen int64) (*Served, error) {
	if m == nil || m.H == nil || m.Table == nil {
		return nil, errors.New("registry: nil model")
	}
	eng, err := engine.New(m, engine.Options{})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := eng.Warmup(ctx, r.opt.Warmup); err != nil {
		return nil, err
	}
	if gen <= 0 {
		gen = r.gen.Add(1)
	}
	return &Served{
		name:     name,
		gen:      gen,
		eng:      eng,
		loadedAt: time.Now(),
	}, nil
}

// RaiseGeneration lifts the registry-wide generation counter to at
// least gen. The fleet layer calls it when it learns (via a delete
// tombstone or gossip digest) that the fleet has already used
// generations this registry has never seen, so later local Loads and
// appends number strictly past them and cannot fork history.
func (r *Registry) RaiseGeneration(gen int64) { r.raiseGen(gen) }

// raiseGen lifts the registry-wide generation counter to at least gen,
// so locally assigned generations after an explicit-generation publish
// keep increasing past it.
func (r *Registry) raiseGen(gen int64) {
	for {
		cur := r.gen.Load()
		if cur >= gen || r.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// LoadInfo reports the outcome of a Load.
type LoadInfo struct {
	Name string
	// Generation is the published model's load generation.
	Generation int64
	// Swapped reports whether an older model was hot-swapped out (and
	// fully drained before Load returned).
	Swapped bool
	// Stale reports that a LoadGenerationContext was skipped because
	// the registry already serves this name at the incoming generation
	// or newer; Generation then holds the current (newer) generation.
	Stale bool
	// Evicted lists models removed by the LRU bound, in eviction order.
	Evicted []string
}

// Load publishes a model under a name, hot-swapping any previous model
// with the same name. The old model is drained (all in-flight requests
// finished) before Load returns. Load also enforces the resident-cost
// bound, evicting least-recently-used other models as needed.
func (r *Registry) Load(name string, m *core.Model) (*LoadInfo, error) {
	return r.LoadContext(context.Background(), name, m)
}

// LoadContext is Load under a context: warmup preparation (when
// configured) aborts promptly with ctx.Err() and nothing published
// when ctx is canceled — an aborted snapshot upload stops burning CPU.
// The publish/drain step after a successful preparation is not
// interruptible: once the swap happens it completes, keeping the
// registry consistent.
func (r *Registry) LoadContext(ctx context.Context, name string, m *core.Model) (*LoadInfo, error) {
	if name == "" {
		return nil, errors.New("registry: empty model name")
	}
	buildStart := time.Now()
	s, err := r.buildServed(ctx, name, m, 0)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			r.opt.Logger.LogAttrs(ctx, slog.LevelError, "model load failed",
				slog.String("model", name), slog.String("error", err.Error()))
			if r.opt.LoadHook != nil {
				r.opt.LoadHook(name, err)
			}
		}
		return nil, err
	}

	r.mu.Lock()
	e := r.entries[name]
	if e == nil {
		e = &entry{}
		r.entries[name] = e
	}
	old := e.cur.Swap(s)
	e.lastUsed.Store(r.clock.Add(1))
	evictedNames, drains := r.evictOverBoundLocked(name)
	r.mu.Unlock()

	info := &LoadInfo{Name: name, Generation: s.gen, Evicted: evictedNames}
	if old != nil {
		info.Swapped = true
		r.swaps.Add(1)
		drain(old)
	}
	// The new generation is already installed: evicted snapshots must
	// drain to zero refs regardless of the caller's ctx, or their
	// memory would leak on cancellation.
	//hyperlint:ignore ctxpoll
	for _, d := range drains {
		drain(d)
	}
	r.notifyEvicted(evictedNames, drains)
	for _, victim := range evictedNames {
		r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model evicted",
			slog.String("model", victim), slog.String("by", name))
	}
	r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model loaded",
		slog.String("model", name),
		slog.Int64("generation", s.gen),
		slog.Int("edges", m.H.NumEdges()),
		slog.Bool("swapped", info.Swapped),
		slog.Duration("build", time.Since(buildStart)))
	if r.opt.LoadHook != nil {
		r.opt.LoadHook(name, nil)
	}
	return info, nil
}

// LoadGenerationContext publishes a model under an explicit generation
// number instead of assigning the next local one. It is the receiving
// half of fleet snapshot replication: a replica publishes exactly the
// generation the originating node assigned, so X-Model-Generation is
// coherent across the fleet and gossip can compare generations
// directly.
//
// If the registry already serves name at gen or newer, nothing is
// published and the returned LoadInfo has Stale set with the current
// generation — replication and gossip pulls are idempotent and late
// deliveries cannot roll a model back. On publish, the registry-wide
// generation counter is raised to at least gen, so later local Loads
// and appends on this node number strictly past everything it has seen
// from the fleet.
func (r *Registry) LoadGenerationContext(ctx context.Context, name string, m *core.Model, gen int64) (*LoadInfo, error) {
	if name == "" {
		return nil, errors.New("registry: empty model name")
	}
	if gen <= 0 {
		return nil, errors.New("registry: explicit generation must be positive")
	}
	// Cheap pre-check before paying for the engine build: a stale
	// delivery is common under gossip races and should cost nothing.
	if cur := r.Peek(name); cur != nil {
		curGen := cur.Generation()
		cur.Release()
		if curGen >= gen {
			return &LoadInfo{Name: name, Generation: curGen, Stale: true}, nil
		}
	}
	buildStart := time.Now()
	s, err := r.buildServed(ctx, name, m, gen)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			r.opt.Logger.LogAttrs(ctx, slog.LevelError, "model load failed",
				slog.String("model", name), slog.String("error", err.Error()))
			if r.opt.LoadHook != nil {
				r.opt.LoadHook(name, err)
			}
		}
		return nil, err
	}

	r.mu.Lock()
	e := r.entries[name]
	if e == nil {
		e = &entry{}
		r.entries[name] = e
	}
	// Re-check under the lock: another replication or a local append
	// may have published an equal-or-newer generation while the engine
	// was being built.
	if cur := e.cur.Load(); cur != nil && cur.gen >= gen {
		curGen := cur.gen
		r.mu.Unlock()
		return &LoadInfo{Name: name, Generation: curGen, Stale: true}, nil
	}
	r.raiseGen(gen)
	old := e.cur.Swap(s)
	e.lastUsed.Store(r.clock.Add(1))
	evictedNames, drains := r.evictOverBoundLocked(name)
	r.mu.Unlock()

	info := &LoadInfo{Name: name, Generation: gen, Evicted: evictedNames}
	if old != nil {
		info.Swapped = true
		r.swaps.Add(1)
		drain(old)
	}
	//hyperlint:ignore ctxpoll
	for _, d := range drains {
		drain(d)
	}
	r.notifyEvicted(evictedNames, drains)
	for _, victim := range evictedNames {
		r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model evicted",
			slog.String("model", victim), slog.String("by", name))
	}
	r.opt.Logger.LogAttrs(ctx, slog.LevelInfo, "model replicated",
		slog.String("model", name),
		slog.Int64("generation", gen),
		slog.Int("edges", m.H.NumEdges()),
		slog.Bool("swapped", info.Swapped),
		slog.Duration("build", time.Since(buildStart)))
	if r.opt.LoadHook != nil {
		r.opt.LoadHook(name, nil)
	}
	return info, nil
}

// evictOverBoundLocked enforces MaxResidentEdges against the true
// resident cost (model edges plus built derived artifacts), never
// evicting the model named keep. It returns the evicted names in
// eviction order and the Served values to drain once the lock drops.
func (r *Registry) evictOverBoundLocked(keep string) ([]string, []*Served) {
	if r.opt.MaxResidentEdges <= 0 {
		return nil, nil
	}
	var names []string
	var drains []*Served
	for r.residentCostLocked() > int64(r.opt.MaxResidentEdges) {
		victim, vs := "", (*Served)(nil)
		var oldest int64
		for name, e := range r.entries {
			if name == keep {
				continue
			}
			s := e.cur.Load()
			if s == nil {
				continue
			}
			if used := e.lastUsed.Load(); victim == "" || used < oldest {
				victim, vs, oldest = name, s, used
			}
		}
		if victim == "" {
			break // only the protected model remains
		}
		// Clear the pointer so readers racing on a stale entry see the
		// eviction instead of retrying on the retired model forever.
		r.entries[victim].cur.Store(nil)
		delete(r.entries, victim)
		r.evicted.Add(1)
		names = append(names, victim)
		drains = append(drains, vs)
	}
	return names, drains
}

// residentCostLocked sums the true resident cost of every loaded
// model: hyperedges plus derived-artifact charges from each engine.
// Lazily built artifacts (a similarity graph someone queried, a grown
// rule cache) are therefore visible to the eviction bound.
func (r *Registry) residentCostLocked() int64 {
	var total int64
	for _, e := range r.entries {
		if s := e.cur.Load(); s != nil {
			total += s.eng.ResidentCost()
		}
	}
	return total
}

// drain retires a swapped-out Served and waits until no reader holds
// it. Readers that raced the swap either finish their current request
// (immutable model, safe — this includes writing the response to a
// slow client) or notice retirement in Acquire and retry on the new
// model, so the wait is bounded by one in-flight request. The backoff
// escalates from Gosched to millisecond sleeps so waiting on a slow
// reader parks instead of burning the core the reader needs.
func drain(s *Served) {
	s.retired.Store(true)
	for i := 0; s.refs.Load() != 0; i++ {
		switch {
		case i < 100:
			runtime.Gosched()
		case i < 1000:
			time.Sleep(100 * time.Microsecond)
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// Acquire returns the current model served under name, with a
// reference held, or nil if the name is unknown (or evicted). Callers
// must Release. The fast path is a map read under RLock plus two
// atomic operations — no heap allocation.
func (r *Registry) Acquire(name string) *Served {
	return r.acquire(name, true)
}

// Peek is Acquire without the LRU bump: for observability reads
// (model listings, dashboards) that must not count as model usage, so
// a periodic poll cannot keep an idle model resident past a hotter
// one. Callers must Release.
func (r *Registry) Peek(name string) *Served {
	return r.acquire(name, false)
}

//hyper:noalloc
func (r *Registry) acquire(name string, bumpLRU bool) *Served {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil
	}
	for {
		s := e.cur.Load()
		if s == nil {
			return nil
		}
		s.refs.Add(1)
		// Double-check after taking the reference: if the model was
		// retired (or replaced) in the window, back out and retry on
		// the current pointer.
		if !s.retired.Load() && e.cur.Load() == s {
			if bumpLRU {
				e.lastUsed.Store(r.clock.Add(1))
			}
			return s
		}
		s.refs.Add(-1)
	}
}

// Remove unloads a model, draining in-flight readers. It reports
// whether the name was present.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	e := r.entries[name]
	var old *Served
	if e != nil {
		old = e.cur.Swap(nil)
		delete(r.entries, name)
	}
	r.mu.Unlock()
	if old != nil {
		drain(old)
	}
	if e != nil {
		r.opt.Logger.LogAttrs(context.Background(), slog.LevelInfo, "model removed",
			slog.String("model", name))
	}
	return e != nil
}

// RemoveGeneration unloads name only if its current generation is at
// most gen, draining in-flight readers, and raises the registry-wide
// generation counter to at least gen either way. It is the receiving
// half of fleet delete replication: a delete stamped with the
// generation it observed must not destroy a concurrent newer write
// (the newest generation wins), and the raised counter keeps later
// local loads numbering past the deleted lineage. It reports whether a
// model was removed.
func (r *Registry) RemoveGeneration(name string, gen int64) bool {
	r.raiseGen(gen)
	r.mu.Lock()
	e := r.entries[name]
	var old *Served
	if e != nil {
		if cur := e.cur.Load(); cur != nil && cur.gen <= gen {
			old = e.cur.Swap(nil)
			delete(r.entries, name)
		}
	}
	r.mu.Unlock()
	if old != nil {
		drain(old)
		r.opt.Logger.LogAttrs(context.Background(), slog.LevelInfo, "model removed",
			slog.String("model", name), slog.Int64("through_generation", gen))
	}
	return old != nil
}

// Names returns the resident model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ModelStats describes one resident model for /stats.
type ModelStats struct {
	Name        string       `json:"name"`
	Generation  int64        `json:"generation"`
	Edges       int          `json:"edges"`
	Attrs       int          `json:"attrs"`
	Rows        int          `json:"rows"`
	RowsOmitted bool         `json:"rows_omitted,omitempty"`
	Queries     int64        `json:"queries"`
	LoadedAt    time.Time    `json:"loaded_at"`
	Cost        int64        `json:"resident_cost"`
	Engine      engine.Stats `json:"engine"`
}

// Stats is a point-in-time registry summary.
type Stats struct {
	Models        []ModelStats `json:"models"`
	ResidentEdges int          `json:"resident_edges"`
	ResidentCost  int64        `json:"resident_cost"`
	MaxEdges      int          `json:"max_resident_edges,omitempty"`
	Swaps         int64        `json:"swaps"`
	Evictions     int64        `json:"evictions"`
}

// Stats snapshots the registry.
func (r *Registry) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := Stats{MaxEdges: r.opt.MaxResidentEdges, Swaps: r.swaps.Load(), Evictions: r.evicted.Load()}
	for name, e := range r.entries {
		s := e.cur.Load()
		if s == nil {
			continue
		}
		m := s.Model()
		st.Models = append(st.Models, ModelStats{
			Name:        name,
			Generation:  s.gen,
			Edges:       m.H.NumEdges(),
			Attrs:       m.Table.NumAttrs(),
			Rows:        m.Table.NumRows(),
			RowsOmitted: m.RowsOmitted,
			Queries:     s.queries.Load(),
			LoadedAt:    s.loadedAt,
			Cost:        s.eng.ResidentCost(),
			Engine:      s.eng.Stats(),
		})
		st.ResidentEdges += m.H.NumEdges()
		st.ResidentCost += s.eng.ResidentCost()
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].Name < st.Models[j].Name })
	return st
}
