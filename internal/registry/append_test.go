package registry

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/delta"
	"hypermine/internal/engine"
	"hypermine/internal/table"
	"hypermine/internal/testutil"
)

// appendRows generates extra observations shaped like testModel's.
func appendRows(seed int64, nAttrs, n int) [][]table.Value {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]table.Value, n)
	for i := range rows {
		base := table.Value(1 + rng.Intn(3))
		rows[i] = make([]table.Value, nAttrs)
		for j := range rows[i] {
			if rng.Intn(3) == 0 {
				rows[i][j] = table.Value(1 + rng.Intn(3))
			} else {
				rows[i][j] = base
			}
		}
	}
	return rows
}

// sameModels compares two mined models bit for bit: edge sets,
// weights, and EdgeACV entries.
func sameModels(t *testing.T, got, want *core.Model) {
	t.Helper()
	if got.H.NumEdges() != want.H.NumEdges() {
		t.Fatalf("edges: got %d want %d", got.H.NumEdges(), want.H.NumEdges())
	}
	for _, e := range want.H.Edges() {
		idx, ok := got.H.Lookup(e.Tail, e.Head)
		if !ok {
			t.Fatalf("missing edge %v -> %v", e.Tail, e.Head)
		}
		ge := got.H.Edges()[idx]
		if math.Float64bits(ge.Weight) != math.Float64bits(e.Weight) {
			t.Fatalf("edge %v -> %v weight %v != %v", e.Tail, e.Head, ge.Weight, e.Weight)
		}
	}
}

// TestAppendPublishesNewGeneration: a real append bumps the
// generation, serves the concatenated rows, and the published model is
// bit-identical to a full re-mine of the concatenated table.
func TestAppendPublishesNewGeneration(t *testing.T) {
	m := testModel(t, 41, 10, 300)
	r := New(Options{})
	li, err := r.Load("m", m)
	if err != nil {
		t.Fatal(err)
	}
	rows := appendRows(42, 10, 30)
	info, err := r.AppendRows("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Swapped {
		t.Fatal("real append did not swap")
	}
	if info.Generation <= li.Generation {
		t.Fatalf("generation did not advance: %d -> %d", li.Generation, info.Generation)
	}
	if info.Appended != len(rows) || info.Rows != m.Table.NumRows()+len(rows) {
		t.Fatalf("info rows: %+v", info)
	}

	sv := r.Acquire("m")
	if sv == nil {
		t.Fatal("model gone after append")
	}
	defer sv.Release()
	if sv.Generation() != info.Generation {
		t.Fatalf("serving generation %d, append reported %d", sv.Generation(), info.Generation)
	}
	nt, err := m.Table.AppendRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Build(nt, m.Config)
	if err != nil {
		t.Fatal(err)
	}
	sameModels(t, sv.Model(), want)

	st := r.Stats()
	if len(st.Models) != 1 || st.Models[0].Generation != info.Generation {
		t.Fatalf("stats generation: %+v", st.Models)
	}
}

// TestAppendNoOp: zero rows publish nothing — same generation, same
// engine, Swapped false.
func TestAppendNoOp(t *testing.T) {
	m := testModel(t, 43, 8, 200)
	r := New(Options{})
	li, err := r.Load("m", m)
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.AppendRows("m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Swapped || info.Generation != li.Generation || info.Appended != 0 {
		t.Fatalf("no-op append published: %+v", info)
	}
}

// TestAppendUnknownModel pins ErrNotFound.
func TestAppendUnknownModel(t *testing.T) {
	r := New(Options{})
	if _, err := r.AppendRows("ghost", appendRows(1, 4, 2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestAppendReseedsAfterLoad: a hot swap between appends must reseed
// the live dataset from the newly served model, not keep extending the
// replaced one.
func TestAppendReseedsAfterLoad(t *testing.T) {
	m1 := testModel(t, 44, 8, 200)
	r := New(Options{})
	if _, err := r.Load("m", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendRows("m", appendRows(45, 8, 10)); err != nil {
		t.Fatal(err)
	}
	m2 := testModel(t, 46, 8, 250) // hot swap to an unrelated model
	if _, err := r.Load("m", m2); err != nil {
		t.Fatal(err)
	}
	rows := appendRows(47, 8, 15)
	info, err := r.AppendRows("m", rows)
	if err != nil {
		t.Fatal(err)
	}
	if want := m2.Table.NumRows() + len(rows); info.Rows != want {
		t.Fatalf("append extended the replaced model: rows %d, want %d", info.Rows, want)
	}
}

// TestAppendConflict: a Load that lands while the delta is being
// prepared wins; the append is abandoned with ErrConflict and the
// admin action's model keeps serving.
func TestAppendConflict(t *testing.T) {
	m := testModel(t, 48, 8, 200)
	r := New(Options{})
	if _, err := r.Load("m", m); err != nil {
		t.Fatal(err)
	}
	m2 := testModel(t, 49, 8, 220)
	_, err := r.appendContext(context.Background(), "m", func(ds *delta.Dataset) (*core.Model, delta.Changes, error) {
		// Simulate the race: an admin Load publishes while this append
		// is mid-delta.
		if _, lerr := r.Load("m", m2); lerr != nil {
			return nil, delta.Changes{}, lerr
		}
		return ds.AppendRowsContext(context.Background(), appendRows(50, 8, 5))
	})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("err = %v, want ErrConflict", err)
	}
	sv := r.Acquire("m")
	if sv == nil {
		t.Fatal("model gone")
	}
	defer sv.Release()
	if sv.Model() != m2 {
		t.Fatal("conflicted append overwrote the newer Load")
	}
}

// TestConcurrentQueriesDuringAppend hammers one model with queries
// from several goroutines while appends republish it repeatedly. Every
// response must come from a coherent generation (the engine answers,
// no panics, no races — run under -race), old generations must drain,
// and no goroutines may leak.
func TestConcurrentQueriesDuringAppend(t *testing.T) {
	base := testutil.GoroutineBaseline()
	m := testModel(t, 51, 10, 300)
	r := New(Options{})
	if _, err := r.Load("m", m); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sv := r.Acquire("m")
				if sv == nil {
					t.Error("model vanished mid-run")
					return
				}
				var req engine.Request
				switch i % 3 {
				case 0:
					req.Rules = &engine.RulesRequest{Head: "A00", Top: 5}
				case 1:
					req.Similar = &engine.SimilarRequest{A: "A01", B: "A02"}
				default:
					req.Dominators = &engine.DominatorsRequest{}
				}
				if _, err := sv.Engine().Do(ctx, &req); err != nil {
					t.Errorf("query during append: %v", err)
					sv.Release()
					return
				}
				sv.Release()
			}
		}(w)
	}

	lastGen := int64(0)
	for step := 0; step < 6; step++ {
		info, err := r.AppendRows("m", appendRows(int64(52+step), 10, 10))
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation <= lastGen {
			t.Fatalf("generation not monotonic: %d after %d", info.Generation, lastGen)
		}
		lastGen = info.Generation
	}
	close(stop)
	wg.Wait()
	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
}
