package registry

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/engine"
	"hypermine/internal/table"
)

// testModel mines a deterministic model: a noisy table whose first
// five attributes drive the rest, so the dominator covers targets and
// classification is available.
func testModel(t testing.TB, seed int64, nAttrs, rows int) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("A%02d", j)
	}
	tb, err := table.New(attrs, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		base := table.Value(1 + rng.Intn(3))
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = table.Value(1 + rng.Intn(3))
			} else {
				row[j] = base
			}
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.Build(tb, core.Config{GammaEdge: 1.0, GammaPair: 1.0, Candidates: core.EdgeSeeded})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// snapshotRoundTrip reloads a model through the binary codec, exactly
// as the serving PUT path does.
func snapshotRoundTrip(t testing.TB, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, m, core.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestLoadAcquireRelease(t *testing.T) {
	r := New(Options{})
	m := testModel(t, 3, 12, 400)
	info, err := r.Load("demo", m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Swapped || len(info.Evicted) > 0 {
		t.Fatalf("fresh load reported swap/evictions: %+v", info)
	}
	s := r.Acquire("demo")
	if s == nil {
		t.Fatal("Acquire returned nil")
	}
	if s.Model() != m {
		t.Fatal("served model is not the loaded model")
	}
	if len(s.Targets()) == 0 {
		t.Fatal("no targets — fixture should classify")
	}
	if _, err := s.Classifier(); err != nil {
		t.Fatal(err)
	}
	p, err := s.BorrowPredictor()
	if err != nil {
		t.Fatal(err)
	}
	s.ReturnPredictor(p)
	s.Release()

	if got := r.Acquire("nope"); got != nil {
		t.Fatal("Acquire of unknown name succeeded")
	}
	if !r.Remove("demo") {
		t.Fatal("Remove of resident model reported absent")
	}
	if got := r.Acquire("demo"); got != nil {
		t.Fatal("Acquire after Remove succeeded")
	}
}

func TestRowlessModelClassifyUnavailable(t *testing.T) {
	m := testModel(t, 5, 10, 300)
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, m, core.SaveOptions{OmitRows: true}); err != nil {
		t.Fatal(err)
	}
	rowless, err := core.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{})
	if _, err := r.Load("slim", rowless); err != nil {
		t.Fatal(err)
	}
	s := r.Acquire("slim")
	defer s.Release()
	if _, err := s.Classifier(); err == nil || !strings.Contains(err.Error(), "cannot classify") {
		t.Fatalf("Classifier error = %v, want cannot-classify", err)
	}
	if _, err := s.BorrowPredictor(); err == nil {
		t.Fatal("BorrowPredictor on row-less model succeeded")
	}
	// Graph queries still served.
	if s.SimilarityGraph() == nil || len(s.Dominator().DomSet) == 0 {
		t.Fatal("graph artifacts missing on row-less model")
	}
}

// expectedAnswers precomputes the serving answers for every evaluation
// row and target, serially, before any concurrency: the ground truth
// the hot-swap test compares against.
func expectedAnswers(t *testing.T, s *Served, queries [][]table.Value) map[int][]table.Value {
	t.Helper()
	abc, err := s.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	p := abc.NewPredictor()
	out := make(map[int][]table.Value)
	for _, target := range s.Targets() {
		preds := make([]table.Value, len(queries))
		for i, q := range queries {
			v, _, err := p.Predict(q, target)
			if err != nil {
				t.Fatal(err)
			}
			preds[i] = v
		}
		out[target] = preds
	}
	return out
}

// TestHotSwapBitIdentical: concurrent readers classify continuously
// while the model is hot-swapped several times with a model rebuilt
// from the same snapshot bytes. Every answer, before, during and after
// every reload, must equal the serially precomputed expectation. Run
// under -race this also proves the swap path publishes safely.
func TestHotSwapBitIdentical(t *testing.T) {
	base := testModel(t, 11, 14, 600)
	r := New(Options{})
	if _, err := r.Load("m", snapshotRoundTrip(t, base)); err != nil {
		t.Fatal(err)
	}

	// Deterministic query batch over the dominator attributes.
	s0 := r.Acquire("m")
	dom := s0.Dominator().DomSet
	targets := s0.Targets()
	rng := rand.New(rand.NewSource(99))
	queries := make([][]table.Value, 64)
	for i := range queries {
		q := make([]table.Value, len(dom))
		for j := range q {
			q[j] = table.Value(1 + rng.Intn(3))
		}
		queries[i] = q
	}
	want := expectedAnswers(t, s0, queries)
	s0.Release()

	const readers = 8
	const swapsWanted = 6
	var stop atomic.Bool
	var checked atomic.Int64
	errCh := make(chan error, readers)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i++ {
				s := r.Acquire("m")
				if s == nil {
					errCh <- fmt.Errorf("model vanished mid-swap")
					return
				}
				p, err := s.BorrowPredictor()
				if err != nil {
					s.Release()
					errCh <- err
					return
				}
				q := queries[i%len(queries)]
				target := targets[i%len(targets)]
				v, _, err := p.Predict(q, target)
				s.ReturnPredictor(p)
				s.Release()
				if err != nil {
					errCh <- err
					return
				}
				if v != want[target][i%len(queries)] {
					errCh <- fmt.Errorf("reader %d: query %d target %d: got %d, want %d",
						w, i%len(queries), target, v, want[target][i%len(queries)])
					return
				}
				checked.Add(1)
			}
		}(w)
	}

	// Require reader progress between swaps, so every reload provably
	// has in-flight queries before, during, and after it (on one CPU
	// back-to-back swaps could otherwise finish before any reader ran).
	waitProgress := func(min int64) {
		deadline := time.Now().Add(30 * time.Second)
		for checked.Load() < min {
			if time.Now().After(deadline) {
				stop.Store(true)
				t.Fatal("readers made no progress")
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	for i := 0; i < swapsWanted; i++ {
		waitProgress(checked.Load() + 2*readers)
		info, err := r.Load("m", snapshotRoundTrip(t, base))
		if err != nil {
			stop.Store(true)
			t.Fatal(err)
		}
		if !info.Swapped {
			stop.Store(true)
			t.Fatal("reload did not report a swap")
		}
	}
	waitProgress(checked.Load() + 2*readers)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if checked.Load() == 0 {
		t.Fatal("no queries verified")
	}
	if got := r.Stats().Swaps; got != swapsWanted {
		t.Fatalf("swap count %d, want %d", got, swapsWanted)
	}
	// After the final Load returned, every prior generation is drained.
	s := r.Acquire("m")
	if s.Generation() != swapsWanted+1 {
		t.Fatalf("generation %d, want %d", s.Generation(), swapsWanted+1)
	}
	s.Release()
}

// TestEvictionLRUProperty drives a randomized load/acquire sequence
// against a reference LRU simulation and checks the registry evicts
// exactly the least-recently-used models, in order, while respecting
// the resident-edge bound.
func TestEvictionLRUProperty(t *testing.T) {
	// Small models with identical shapes load fast; edge counts differ
	// only via mining noise, so fetch each model's real edge count.
	models := make([]*core.Model, 6)
	edgeCount := make([]int, len(models))
	for i := range models {
		models[i] = testModel(t, int64(100+i), 8, 150)
		edgeCount[i] = models[i].H.NumEdges()
	}
	name := func(i int) string { return fmt.Sprintf("m%d", i) }

	maxEdges := edgeCount[0] + edgeCount[1] + edgeCount[2] // room for ~3 models
	r := New(Options{MaxResidentEdges: maxEdges})

	// Reference state: resident set with last-used stamps.
	type refEntry struct {
		edges int
		used  int
	}
	ref := map[string]*refEntry{}
	clock := 0
	refLoad := func(n string, edges int) []string {
		clock++
		ref[n] = &refEntry{edges: edges, used: clock}
		var evicted []string
		total := func() int {
			sum := 0
			for _, e := range ref {
				sum += e.edges
			}
			return sum
		}
		for total() > maxEdges {
			victim := ""
			for cand, e := range ref {
				if cand == n {
					continue
				}
				if victim == "" || e.used < ref[victim].used {
					victim = cand
				}
			}
			if victim == "" {
				break
			}
			delete(ref, victim)
			evicted = append(evicted, victim)
		}
		return evicted
	}
	refTouch := func(n string) {
		if e, ok := ref[n]; ok {
			clock++
			e.used = clock
		}
	}

	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 200; step++ {
		i := rng.Intn(len(models))
		if rng.Intn(3) == 0 {
			// Touch via Acquire (LRU bump) — on both sides.
			s := r.Acquire(name(i))
			_, inRef := ref[name(i)]
			if (s != nil) != inRef {
				t.Fatalf("step %d: residency mismatch for %s: registry=%v ref=%v", step, name(i), s != nil, inRef)
			}
			if s != nil {
				s.Release()
				refTouch(name(i))
			}
			continue
		}
		info, err := r.Load(name(i), models[i])
		if err != nil {
			t.Fatal(err)
		}
		wantEvicted := refLoad(name(i), edgeCount[i])
		if len(info.Evicted) != len(wantEvicted) {
			t.Fatalf("step %d: evicted %v, want %v", step, info.Evicted, wantEvicted)
		}
		for j := range wantEvicted {
			if info.Evicted[j] != wantEvicted[j] {
				t.Fatalf("step %d: eviction order %v, want %v", step, info.Evicted, wantEvicted)
			}
		}
		// Resident sets agree.
		names := r.Names()
		if len(names) != len(ref) {
			t.Fatalf("step %d: resident %v, ref has %d", step, names, len(ref))
		}
		for _, n := range names {
			if _, ok := ref[n]; !ok {
				t.Fatalf("step %d: %s resident but not in ref", step, n)
			}
		}
		if st := r.Stats(); st.ResidentEdges > maxEdges {
			t.Fatalf("step %d: resident edges %d exceed bound %d", step, st.ResidentEdges, maxEdges)
		}
	}
}

// TestEvictionNeverEvictsIncoming: a model bigger than the bound still
// loads (evicting everything else) rather than evicting itself.
func TestEvictionNeverEvictsIncoming(t *testing.T) {
	small := testModel(t, 201, 8, 150)
	big := testModel(t, 202, 14, 300)
	if big.H.NumEdges() <= small.H.NumEdges() {
		t.Fatalf("fixture: big model (%d edges) not bigger than small (%d)", big.H.NumEdges(), small.H.NumEdges())
	}
	r := New(Options{MaxResidentEdges: small.H.NumEdges()})
	if _, err := r.Load("small", small); err != nil {
		t.Fatal(err)
	}
	info, err := r.Load("big", big)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Evicted) != 1 || info.Evicted[0] != "small" {
		t.Fatalf("evicted %v, want [small]", info.Evicted)
	}
	if names := r.Names(); len(names) != 1 || names[0] != "big" {
		t.Fatalf("resident %v, want [big]", names)
	}
}

// TestPeekDoesNotBumpLRU: observability reads through Peek must not
// protect a model from eviction the way Acquire usage does.
func TestPeekDoesNotBumpLRU(t *testing.T) {
	a := testModel(t, 301, 8, 150)
	b := testModel(t, 302, 8, 150)
	c := testModel(t, 303, 8, 150)
	r := New(Options{MaxResidentEdges: a.H.NumEdges() + b.H.NumEdges()})
	if _, err := r.Load("a", a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("b", b); err != nil {
		t.Fatal(err)
	}
	// Real usage touches b; monitoring polls a many times via Peek.
	s := r.Acquire("b")
	s.Release()
	for i := 0; i < 50; i++ {
		if s := r.Peek("a"); s != nil {
			s.Release()
		}
	}
	info, err := r.Load("c", c)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Evicted) != 1 || info.Evicted[0] != "a" {
		t.Fatalf("evicted %v, want [a]: Peek must not refresh LRU", info.Evicted)
	}
}

// TestLazyLoadThenWarmupPolicy: a default Load builds nothing; a
// Warmup-configured registry prepares everything before publishing.
func TestLazyLoadThenWarmupPolicy(t *testing.T) {
	m := testModel(t, 401, 10, 300)

	lazy := New(Options{})
	if _, err := lazy.Load("m", m); err != nil {
		t.Fatal(err)
	}
	s := lazy.Acquire("m")
	st := s.Engine().Stats()
	if st.SimilarityBuilds != 0 || st.DominatorBuilds != 0 || st.ClassifierBuilds != 0 {
		t.Fatalf("lazy load prebuilt artifacts: %+v", st)
	}
	// First use builds, exactly once.
	if s.SimilarityGraph() == nil {
		t.Fatal("similarity graph unavailable")
	}
	if got := s.Engine().Stats().SimilarityBuilds; got != 1 {
		t.Fatalf("similarity builds %d, want 1", got)
	}
	s.Release()

	eager := New(Options{Warmup: engine.WarmupAll})
	if _, err := eager.Load("m", m); err != nil {
		t.Fatal(err)
	}
	s = eager.Acquire("m")
	st = s.Engine().Stats()
	if st.SimilarityBuilds != 1 || st.DominatorBuilds != 1 || st.ClassifierBuilds != 1 || st.IndexBuilds != 1 {
		t.Fatalf("warmup did not prepare everything: %+v", st)
	}
	s.Release()
}

// TestEvictionSeesDerivedArtifactCost: a model whose engine lazily
// built heavy artifacts after load must be charged for them — loading
// another model then trips the bound even though bare edge counts
// would all fit.
func TestEvictionSeesDerivedArtifactCost(t *testing.T) {
	m1 := testModel(t, 402, 10, 300)
	m2 := testModel(t, 403, 10, 300)
	m3 := testModel(t, 404, 10, 300)

	// Generous slack above the bare edge totals: all three models fit
	// while nothing derived is resident.
	bound := m1.H.NumEdges() + m2.H.NumEdges() + m3.H.NumEdges() + 50
	r := New(Options{MaxResidentEdges: bound})
	if _, err := r.Load("m1", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("m2", m2); err != nil {
		t.Fatal(err)
	}

	// Queries against m1 build its similarity graph, classifier, and a
	// few rule-cache entries; m2 is touched afterwards so m1 is LRU.
	s := r.Acquire("m1")
	if s.SimilarityGraph() == nil {
		t.Fatal("similarity graph unavailable")
	}
	if _, err := s.Classifier(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Engine().Rules(context.Background(), 0, core.MineOptions{MaxRules: 10}); err != nil {
		t.Fatal(err)
	}
	grown := s.Engine().ResidentCost()
	if grown <= int64(m1.H.NumEdges()) {
		t.Fatalf("derived artifacts not charged: cost %d <= edges %d", grown, m1.H.NumEdges())
	}
	s.Release()
	if s := r.Acquire("m2"); s != nil {
		s.Release()
	}

	if grown+int64(m2.H.NumEdges())+int64(m3.H.NumEdges()) <= int64(bound) {
		t.Fatalf("fixture too small to trip the bound: grown=%d bound=%d", grown, bound)
	}
	info, err := r.Load("m3", m3)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Evicted) == 0 || info.Evicted[0] != "m1" {
		t.Fatalf("evicted %v, want m1 first: derived cost invisible to eviction", info.Evicted)
	}

	st := r.Stats()
	if st.ResidentCost > int64(bound) {
		t.Fatalf("resident cost %d still over bound %d", st.ResidentCost, bound)
	}
}
