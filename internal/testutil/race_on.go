//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Alloc-count assertions are skipped under it, because race
// instrumentation changes escape analysis.
const RaceEnabled = true
