package testutil

import (
	"runtime"
	"time"
)

// GoroutineBaseline snapshots the current goroutine count after a
// short settling pause, for pairing with CheckGoroutines at the end of
// a test. Capture it before the code under test spawns anything.
func GoroutineBaseline() int {
	// Give goroutines from earlier tests a moment to exit.
	time.Sleep(20 * time.Millisecond)
	return runtime.NumGoroutine()
}

// CheckGoroutines polls until the goroutine count settles back to the
// baseline (plus slack, for runtime-owned helpers) or the deadline
// passes, and then reports the count and a full stack dump via fail.
// It is the goleak-style leak check shared by the registry, engine,
// and server suites:
//
//	base := testutil.GoroutineBaseline()
//	... exercise code that spawns goroutines ...
//	testutil.CheckGoroutines(t.Fatalf, base, 0, 5*time.Second)
func CheckGoroutines(fail func(format string, args ...any), baseline, slack int, wait time.Duration) {
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			fail("goroutine leak: %d > baseline %d (+%d slack)\n%s",
				n, baseline, slack, buf[:runtime.Stack(buf, true)])
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
