package apriori

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// marketBasket is the §1.1 example domain: binary attributes with
// 1=absent, 2=present.
func marketBasket(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([]string{"milk", "diapers", "beer", "eggs"}, 2, [][]table.Value{
		{2, 2, 2, 2},
		{2, 2, 1, 2},
		{2, 1, 2, 1},
		{1, 2, 2, 1},
		{2, 2, 2, 1},
		{2, 2, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestFrequentItemsetsMarketBasket(t *testing.T) {
	tb := marketBasket(t)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Frequent{}
	for _, f := range freq {
		byKey[key(f.Items)] = f
	}
	// milk present: 5/6; milk+diapers present: 4/6.
	milk := key([]core.Item{{Attr: 0, Val: 2}})
	if f, ok := byKey[milk]; !ok || f.Count != 5 {
		t.Errorf("milk frequent = %+v", byKey[milk])
	}
	md := key([]core.Item{{Attr: 0, Val: 2}, {Attr: 1, Val: 2}})
	if f, ok := byKey[md]; !ok || f.Count != 4 || !almost(f.Support, 4.0/6) {
		t.Errorf("milk+diapers = %+v", byKey[md])
	}
	// milk+diapers+beer present: 2/6 < 0.5 -> absent.
	mdb := key([]core.Item{{Attr: 0, Val: 2}, {Attr: 1, Val: 2}, {Attr: 2, Val: 2}})
	if _, ok := byKey[mdb]; ok {
		t.Error("infrequent triple reported")
	}
}

func TestFrequentItemsetsValidation(t *testing.T) {
	tb := marketBasket(t)
	if _, err := FrequentItemsets(tb, Options{MinSupport: 0}); err == nil {
		t.Error("want error for MinSupport=0")
	}
	if _, err := FrequentItemsets(tb, Options{MinSupport: 1.5}); err == nil {
		t.Error("want error for MinSupport>1")
	}
	empty, _ := table.New([]string{"A"}, 2)
	if _, err := FrequentItemsets(empty, Options{MinSupport: 0.5}); err == nil {
		t.Error("want error for empty table")
	}
}

func TestMaxLen(t *testing.T) {
	tb := marketBasket(t)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.3, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freq {
		if len(f.Items) > 2 {
			t.Fatalf("itemset %v exceeds MaxLen", f.Items)
		}
	}
}

func TestGenerateRulesMarketBasket(t *testing.T) {
	tb := marketBasket(t)
	rules, err := Mine(tb, Options{MinSupport: 0.5}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	// {diapers=2} => {milk=2}: supp(X u Y)=4/6, supp(X)=5/6 -> conf 0.8.
	found := false
	for _, r := range rules {
		if len(r.X) == 1 && len(r.Y) == 1 &&
			r.X[0] == (core.Item{Attr: 1, Val: 2}) && r.Y[0] == (core.Item{Attr: 0, Val: 2}) {
			found = true
			if !almost(r.Confidence, 0.8) || !almost(r.Support, 4.0/6) {
				t.Errorf("rule quality = %+v", r)
			}
			// Lift = 0.8 / (5/6) = 0.96.
			if !almost(r.Lift, 0.8/(5.0/6)) {
				t.Errorf("lift = %v", r.Lift)
			}
		}
		if r.Confidence < 0.7 {
			t.Errorf("rule below confidence threshold: %+v", r)
		}
	}
	if !found {
		t.Error("diapers => milk not generated")
	}
	// Ranked by confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatal("rules not ranked by confidence")
		}
	}
	if _, err := GenerateRules(nil, 1.5); err == nil {
		t.Error("want error for bad minConfidence")
	}
}

func randomTable(rng *rand.Rand, nAttrs, k, rows int) *table.Table {
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j))
	}
	tb, _ := table.New(attrs, k)
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = table.Value(1 + rng.Intn(k))
		}
		_ = tb.AppendRow(row)
	}
	return tb
}

// Properties on random tables: (1) downward closure — every reported
// itemset's subsets are also reported; (2) supports agree with
// core.Support; (3) rule confidences agree with core.Confidence.
func TestAprioriProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 4, 2+rng.Intn(2), 20+rng.Intn(60))
		minSupp := 0.15 + rng.Float64()*0.2
		freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
		if err != nil {
			return false
		}
		keys := map[string]bool{}
		for _, f := range freq {
			keys[key(f.Items)] = true
		}
		for _, fs := range freq {
			if !almost(fs.Support, core.Support(tb, fs.Items)) {
				return false
			}
			if fs.Support < minSupp-1e-9 {
				return false
			}
			if len(fs.Items) > 1 {
				buf := make([]core.Item, 0, len(fs.Items)-1)
				for drop := range fs.Items {
					buf = buf[:0]
					for i, it := range fs.Items {
						if i != drop {
							buf = append(buf, it)
						}
					}
					if !keys[key(buf)] {
						return false // downward closure violated
					}
				}
			}
		}
		rules, err := GenerateRules(freq, 0.5)
		if err != nil {
			return false
		}
		for _, r := range rules {
			want := core.Confidence(tb, core.Rule{X: r.X, Y: r.Y})
			if !almost(r.Confidence, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Exhaustive cross-check on a small instance: Apriori finds exactly
// the itemsets a brute-force enumeration finds.
func TestAprioriMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tb := randomTable(rng, 3, 2, 30)
	const minSupp = 0.2
	freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range freq {
		got[key(f.Items)] = true
	}
	// Brute force: all itemsets over distinct attributes, sizes 1..3.
	var brute func(start int, cur []core.Item)
	count := 0
	brute = func(start int, cur []core.Item) {
		if len(cur) > 0 {
			if core.Support(tb, cur) >= minSupp {
				count++
				if !got[key(cur)] {
					t.Fatalf("brute-force itemset %v missed by Apriori", cur)
				}
			} else if got[key(cur)] {
				t.Fatalf("Apriori reported infrequent itemset %v", cur)
			}
		}
		for a := start; a < tb.NumAttrs(); a++ {
			for v := 1; v <= tb.K(); v++ {
				brute(a+1, append(cur, core.Item{Attr: a, Val: table.Value(v)}))
			}
		}
	}
	brute(0, nil)
	if count != len(freq) {
		t.Errorf("Apriori found %d itemsets, brute force %d", len(freq), count)
	}
}
