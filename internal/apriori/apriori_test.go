package apriori

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// key is a human-readable itemset key for test-side set comparisons
// (the miner itself uses fixed-width uint64 encodings).
func key(items []core.Item) string {
	var sb strings.Builder
	for i, it := range items {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(strconv.Itoa(it.Attr))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(int(it.Val)))
	}
	return sb.String()
}

// marketBasket is the §1.1 example domain: binary attributes with
// 1=absent, 2=present.
func marketBasket(t *testing.T) *table.Table {
	t.Helper()
	tb, err := table.FromRows([]string{"milk", "diapers", "beer", "eggs"}, 2, [][]table.Value{
		{2, 2, 2, 2},
		{2, 2, 1, 2},
		{2, 1, 2, 1},
		{1, 2, 2, 1},
		{2, 2, 2, 1},
		{2, 2, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestFrequentItemsetsMarketBasket(t *testing.T) {
	tb := marketBasket(t)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Frequent{}
	for _, f := range freq {
		byKey[key(f.Items)] = f
	}
	// milk present: 5/6; milk+diapers present: 4/6.
	milk := key([]core.Item{{Attr: 0, Val: 2}})
	if f, ok := byKey[milk]; !ok || f.Count != 5 {
		t.Errorf("milk frequent = %+v", byKey[milk])
	}
	md := key([]core.Item{{Attr: 0, Val: 2}, {Attr: 1, Val: 2}})
	if f, ok := byKey[md]; !ok || f.Count != 4 || !almost(f.Support, 4.0/6) {
		t.Errorf("milk+diapers = %+v", byKey[md])
	}
	// milk+diapers+beer present: 2/6 < 0.5 -> absent.
	mdb := key([]core.Item{{Attr: 0, Val: 2}, {Attr: 1, Val: 2}, {Attr: 2, Val: 2}})
	if _, ok := byKey[mdb]; ok {
		t.Error("infrequent triple reported")
	}
}

func TestFrequentItemsetsValidation(t *testing.T) {
	tb := marketBasket(t)
	if _, err := FrequentItemsets(tb, Options{MinSupport: 0}); err == nil {
		t.Error("want error for MinSupport=0")
	}
	if _, err := FrequentItemsets(tb, Options{MinSupport: 1.5}); err == nil {
		t.Error("want error for MinSupport>1")
	}
	empty, _ := table.New([]string{"A"}, 2)
	if _, err := FrequentItemsets(empty, Options{MinSupport: 0.5}); err == nil {
		t.Error("want error for empty table")
	}
}

func TestMaxLen(t *testing.T) {
	tb := marketBasket(t)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.3, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range freq {
		if len(f.Items) > 2 {
			t.Fatalf("itemset %v exceeds MaxLen", f.Items)
		}
	}
}

func TestGenerateRulesMarketBasket(t *testing.T) {
	tb := marketBasket(t)
	rules, err := Mine(tb, Options{MinSupport: 0.5}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	// {diapers=2} => {milk=2}: supp(X u Y)=4/6, supp(X)=5/6 -> conf 0.8.
	found := false
	for _, r := range rules {
		if len(r.X) == 1 && len(r.Y) == 1 &&
			r.X[0] == (core.Item{Attr: 1, Val: 2}) && r.Y[0] == (core.Item{Attr: 0, Val: 2}) {
			found = true
			if !almost(r.Confidence, 0.8) || !almost(r.Support, 4.0/6) {
				t.Errorf("rule quality = %+v", r)
			}
			// Lift = 0.8 / (5/6) = 0.96.
			if !almost(r.Lift, 0.8/(5.0/6)) {
				t.Errorf("lift = %v", r.Lift)
			}
		}
		if r.Confidence < 0.7 {
			t.Errorf("rule below confidence threshold: %+v", r)
		}
	}
	if !found {
		t.Error("diapers => milk not generated")
	}
	// Ranked by confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence+1e-12 {
			t.Fatal("rules not ranked by confidence")
		}
	}
	if _, err := GenerateRules(nil, 1.5); err == nil {
		t.Error("want error for bad minConfidence")
	}
}

func randomTable(rng *rand.Rand, nAttrs, k, rows int) *table.Table {
	attrs := make([]string, nAttrs)
	for j := range attrs {
		attrs[j] = "A" + string(rune('a'+j))
	}
	tb, _ := table.New(attrs, k)
	row := make([]table.Value, nAttrs)
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = table.Value(1 + rng.Intn(k))
		}
		_ = tb.AppendRow(row)
	}
	return tb
}

// Properties on random tables: (1) downward closure — every reported
// itemset's subsets are also reported; (2) supports agree with
// core.Support; (3) rule confidences agree with core.Confidence.
func TestAprioriProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tb := randomTable(rng, 4, 2+rng.Intn(2), 20+rng.Intn(60))
		minSupp := 0.15 + rng.Float64()*0.2
		freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
		if err != nil {
			return false
		}
		keys := map[string]bool{}
		for _, f := range freq {
			keys[key(f.Items)] = true
		}
		for _, fs := range freq {
			if !almost(fs.Support, core.Support(tb, fs.Items)) {
				return false
			}
			if fs.Support < minSupp-1e-9 {
				return false
			}
			if len(fs.Items) > 1 {
				buf := make([]core.Item, 0, len(fs.Items)-1)
				for drop := range fs.Items {
					buf = buf[:0]
					for i, it := range fs.Items {
						if i != drop {
							buf = append(buf, it)
						}
					}
					if !keys[key(buf)] {
						return false // downward closure violated
					}
				}
			}
		}
		rules, err := GenerateRules(freq, 0.5)
		if err != nil {
			return false
		}
		for _, r := range rules {
			want := core.Confidence(tb, core.Rule{X: r.X, Y: r.Y})
			if !almost(r.Confidence, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMinCountExactThreshold: the support cut must keep itemsets that
// meet the threshold exactly. The old int(MinSupport*float64(n))
// ceiling computed 0.07*100 = 7.000000000000001 and demanded 8 rows,
// silently dropping a 7-row itemset whose support is exactly 7%.
func TestMinCountExactThreshold(t *testing.T) {
	// 100 rows, one attribute taking value 2 in exactly 7 of them.
	tb, err := table.New([]string{"A", "B"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v := table.Value(1)
		if i < 7 {
			v = 2
		}
		if err := tb.AppendRow([]table.Value{v, 1}); err != nil {
			t.Fatal(err)
		}
	}
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.07})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range freq {
		if len(f.Items) == 1 && f.Items[0] == (core.Item{Attr: 0, Val: 2}) {
			found = true
			if f.Count != 7 {
				t.Errorf("count = %d, want 7", f.Count)
			}
		}
	}
	if !found {
		t.Error("itemset with support exactly 0.07 dropped at MinSupport=0.07")
	}

	// The cut must stay consistent with the reported Support division
	// across awkward thresholds and row counts.
	for _, tc := range []struct {
		minSupp float64
		n       int
	}{
		{0.07, 100}, {0.1, 30}, {0.3, 10}, {1.0 / 3.0, 6}, {0.15, 47}, {1, 13}, {1e-9, 5},
	} {
		got := minCountFor(tc.minSupp, tc.n)
		want := tc.n
		for c := 1; c <= tc.n; c++ {
			if float64(c)/float64(tc.n) >= tc.minSupp {
				want = c
				break
			}
		}
		if got != want {
			t.Errorf("minCountFor(%v, %d) = %d, want %d", tc.minSupp, tc.n, got, want)
		}
	}
}

// TestGenerateRulesExactConfidenceThreshold: a rule whose confidence
// equals minConfidence exactly must be kept.
func TestGenerateRulesExactConfidenceThreshold(t *testing.T) {
	tb := marketBasket(t)
	// {diapers=2} => {milk=2} has confidence exactly 4/5 = 0.8.
	rules, err := Mine(tb, Options{MinSupport: 0.5}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if len(r.X) == 1 && len(r.Y) == 1 &&
			r.X[0] == (core.Item{Attr: 1, Val: 2}) && r.Y[0] == (core.Item{Attr: 0, Val: 2}) {
			found = true
		}
	}
	if !found {
		t.Error("rule with confidence exactly at threshold dropped")
	}
}

// TestFrequentItemsetsBitsMatchScan: every count the bitset-backed
// miner reports must equal the scan-based support count, and the
// reported itemset collection must be identical to a brute-force
// enumeration using scan counting on an index-free copy of the table.
func TestFrequentItemsetsBitsMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		tb := randomTable(rng, 3+rng.Intn(3), 2+rng.Intn(3), 30+rng.Intn(120))
		minSupp := 0.1 + rng.Float64()*0.3
		freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
		if err != nil {
			t.Fatal(err)
		}
		// Clone carries no index, so core.SupportCount takes the scan
		// fallback there.
		scanTb := tb.Clone()
		got := map[string]int{}
		for _, f := range freq {
			if c := core.SupportCount(scanTb, f.Items); c != f.Count {
				t.Fatalf("trial %d: itemset %v bitset count %d, scan count %d", trial, f.Items, f.Count, c)
			}
			got[key(f.Items)] = f.Count
		}
		// Brute force over all attribute-distinct itemsets.
		var brute func(start int, cur []core.Item)
		total := 0
		brute = func(start int, cur []core.Item) {
			if len(cur) > 0 {
				c := core.SupportCount(scanTb, cur)
				frequent := float64(c)/float64(scanTb.NumRows()) >= minSupp
				if _, reported := got[key(cur)]; reported != frequent {
					t.Fatalf("trial %d: itemset %v reported=%v frequent=%v (count %d, minSupp %v)",
						trial, cur, reported, frequent, c, minSupp)
				}
				if frequent {
					total++
				}
			}
			for a := start; a < scanTb.NumAttrs(); a++ {
				for v := 1; v <= scanTb.K(); v++ {
					brute(a+1, append(cur, core.Item{Attr: a, Val: table.Value(v)}))
				}
			}
		}
		brute(0, nil)
		if total != len(freq) {
			t.Fatalf("trial %d: Apriori found %d itemsets, brute force %d", trial, len(freq), total)
		}
	}
}

// TestFrequentItemsetsLargeKScanFallback: above indexMaxK the miner
// must not build the dense index (whose memory scales with k) and
// must still return exactly the brute-force itemsets via the scan
// path.
func TestFrequentItemsetsLargeKScanFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tb := randomTable(rng, 3, indexMaxK+8, 120)
	const minSupp = 0.02
	freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
	if err != nil {
		t.Fatal(err)
	}
	if tb.IndexIfBuilt() != nil {
		t.Fatalf("index was built for k=%d > indexMaxK=%d", tb.K(), indexMaxK)
	}
	got := map[string]int{}
	for _, f := range freq {
		got[key(f.Items)] = f.Count
	}
	var brute func(start int, cur []core.Item)
	total := 0
	brute = func(start int, cur []core.Item) {
		if len(cur) > 0 {
			c := core.SupportCount(tb, cur)
			frequent := float64(c)/float64(tb.NumRows()) >= minSupp
			if _, reported := got[key(cur)]; reported != frequent {
				t.Fatalf("itemset %v reported=%v frequent=%v (count %d)", cur, reported, frequent, c)
			}
			if frequent {
				total++
			}
		}
		for a := start; a < tb.NumAttrs(); a++ {
			for v := 1; v <= tb.K(); v++ {
				brute(a+1, append(cur, core.Item{Attr: a, Val: table.Value(v)}))
			}
		}
	}
	brute(0, nil)
	if total != len(freq) {
		t.Fatalf("Apriori found %d itemsets, brute force %d", len(freq), total)
	}
}

// Exhaustive cross-check on a small instance: Apriori finds exactly
// the itemsets a brute-force enumeration finds.
func TestAprioriMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tb := randomTable(rng, 3, 2, 30)
	const minSupp = 0.2
	freq, err := FrequentItemsets(tb, Options{MinSupport: minSupp})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range freq {
		got[key(f.Items)] = true
	}
	// Brute force: all itemsets over distinct attributes, sizes 1..3.
	var brute func(start int, cur []core.Item)
	count := 0
	brute = func(start int, cur []core.Item) {
		if len(cur) > 0 {
			if core.Support(tb, cur) >= minSupp {
				count++
				if !got[key(cur)] {
					t.Fatalf("brute-force itemset %v missed by Apriori", cur)
				}
			} else if got[key(cur)] {
				t.Fatalf("Apriori reported infrequent itemset %v", cur)
			}
		}
		for a := start; a < tb.NumAttrs(); a++ {
			for v := 1; v <= tb.K(); v++ {
				brute(a+1, append(cur, core.Item{Attr: a, Val: table.Value(v)}))
			}
		}
	}
	brute(0, nil)
	if count != len(freq) {
		t.Errorf("Apriori found %d itemsets, brute force %d", len(freq), count)
	}
}
