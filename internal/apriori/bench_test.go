package apriori

import (
	"math/rand"
	"testing"
)

// BenchmarkFrequentItemsets measures level-wise mining on a moderate
// transactional table.
func BenchmarkFrequentItemsets(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 12, 2, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemsets(tb, Options{MinSupport: 0.25, MaxLen: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateRules measures rule generation from a prepared
// frequent-set collection.
func BenchmarkGenerateRules(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 12, 2, 2000)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.25, MaxLen: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRules(freq, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
