package apriori

import (
	"math/rand"
	"testing"
)

// BenchmarkFrequentItemsets measures level-wise mining on a moderate
// transactional table.
func BenchmarkFrequentItemsets(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 12, 2, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemsets(tb, Options{MinSupport: 0.25, MaxLen: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrequentItemsetsCold measures mining including the one-time
// TID-bitset index build: each iteration clones the table, which drops
// the cached index, so this is the first-call cost a single-shot
// caller pays (BenchmarkFrequentItemsets above is the warm cost).
func BenchmarkFrequentItemsetsCold(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 12, 2, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemsets(tb.Clone(), Options{MinSupport: 0.25, MaxLen: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrequentItemsetsWide stresses the candidate join on a wider
// table with a lower threshold, where level sizes (and therefore the
// closure checks and counting) dominate.
func BenchmarkFrequentItemsetsWide(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 24, 2, 5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FrequentItemsets(tb, Options{MinSupport: 0.2, MaxLen: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateRules measures rule generation from a prepared
// frequent-set collection.
func BenchmarkGenerateRules(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	tb := randomTable(rng, 12, 2, 2000)
	freq, err := FrequentItemsets(tb, Options{MinSupport: 0.25, MaxLen: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRules(freq, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
