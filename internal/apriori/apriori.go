// Package apriori implements the classical association-rule mining
// background the paper builds on (§1.1): level-wise Apriori frequent
// itemset mining [AS94] over (attribute, value) items — the
// quantitative-rule setting of [SA96] on an already-discretized table —
// and confidence-thresholded rule generation. It serves as the
// baseline the directed-hypergraph model is motivated against, and its
// support/confidence numbers cross-check internal/core's.
//
// Support counting runs on the table's TID-bitset index
// (table.Index): a candidate's count is the popcount of the
// intersection of its items' posting bitmaps, so each candidate costs
// O(rows/64) word operations instead of a full table re-scan.
package apriori

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"hypermine/internal/core"
	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// Options controls the miner.
type Options struct {
	// MinSupport is the fraction of observations an itemset must
	// match to be frequent. Must be positive (Apriori's pruning
	// depends on it).
	MinSupport float64
	// MaxLen caps itemset size; 0 means unlimited.
	MaxLen int

	// Run carries the runtime-only hooks of FrequentItemsetsContext: a
	// PhaseApriori progress callback (done = completed itemset size,
	// total = MaxLen or 0 when unbounded) and the context-poll stride
	// in counted candidates (0 = DefaultCheckEvery). Held by pointer
	// so Options stays comparable; never persisted.
	Run *runopt.Hooks `json:"-"`
}

// DefaultCheckEvery is the default candidate stride between context
// polls in FrequentItemsetsContext. Counting one candidate is an
// AND+popcount over rows/64 words (or an O(rows) scan), so 64
// candidates bound cancellation latency to well under a level.
const DefaultCheckEvery = 64

// Frequent is one frequent itemset with its support count.
type Frequent struct {
	Items   []core.Item // sorted by (Attr, Val)
	Count   int
	Support float64
}

// Rule is a classical association rule X => Y with quality measures.
type Rule struct {
	X, Y       []core.Item
	Support    float64 // Supp(X u Y)
	Confidence float64 // Supp(X u Y) / Supp(X)
	Lift       float64 // Confidence / Supp(Y)
}

func itemLess(a, b core.Item) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Val < b.Val
}

// itemID is the fixed-width encoding of one item: the attribute index
// shifted past the 8-bit value. It preserves itemLess order, so id
// sequences compare the same way item sequences do.
func itemID(it core.Item) uint64 {
	return uint64(it.Attr)<<8 | uint64(it.Val)
}

// appendIDs appends the items' encodings to dst and returns it.
func appendIDs(dst []uint64, items []core.Item) []uint64 {
	for _, it := range items {
		dst = append(dst, itemID(it))
	}
	return dst
}

func idsLess(a, b []uint64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func idsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsIDs reports whether the lexicographically sorted id
// sequences contain target, by binary search.
func containsIDs(sorted [][]uint64, target []uint64) bool {
	lo := sort.Search(len(sorted), func(i int) bool { return !idsLess(sorted[i], target) })
	return lo < len(sorted) && idsEqual(sorted[lo], target)
}

// minCountFor returns the smallest count c in 1..n whose support
// fraction float64(c)/float64(n) — the same division that produces
// Frequent.Support — clears minSupport. The naive
// int(minSupport*float64(n)) ceiling mis-rounds when the product is
// not exactly representable (0.07*100 evaluates to 7.000000000000001,
// so the ceiling became 8), silently dropping itemsets that meet the
// threshold exactly. Deriving the cut from the division keeps
// "Count >= minCount" and "Support >= MinSupport" consistent, which is
// also the acceptance criterion the brute-force cross-check tests use.
// The float estimate is at most a few ulps off, so the correction
// loops run O(1) times.
func minCountFor(minSupport float64, n int) int {
	c := int(minSupport * float64(n))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	for c > 1 && float64(c-1)/float64(n) >= minSupport {
		c--
	}
	for c < n && float64(c)/float64(n) < minSupport {
		c++
	}
	return c
}

// indexMaxK bounds the value cardinality at which FrequentItemsets
// builds the TID-bitset index. The index is dense — attrs * k *
// ceil(rows/64) words regardless of value occupancy — so its memory is
// k/8 times the table's; k <= 32 caps that at 4x. Beyond it the miner
// falls back to scan counting (core.SupportCount on an index-free
// table), which is O(rows) memory. Discretized tables are virtually
// always far below this (the paper uses k = 3 and 5).
const indexMaxK = 32

// intersectItems returns the intersection bitmap of the items' posting
// lists. A single item aliases the index's posting directly; larger
// sets materialize into scratch (which must have Words() length).
func intersectItems(ix *table.Index, items []core.Item, scratch []uint64) []uint64 {
	if len(items) == 1 {
		return ix.Posting(items[0].Attr, items[0].Val)
	}
	copy(scratch, ix.Posting(items[0].Attr, items[0].Val))
	for _, it := range items[1:] {
		table.AndInto(scratch, ix.Posting(it.Attr, it.Val))
	}
	return scratch
}

// FrequentItemsets runs level-wise Apriori on the table: L1 is the
// frequent single items; candidates of size k join two frequent
// (k-1)-itemsets sharing their first k-2 items, are pruned by the
// downward-closure property, and survive if their counted support
// clears MinSupport. Itemsets never repeat an attribute — in the
// multi-valued setting two values of one attribute cannot co-occur in
// a row.
//
// Counting uses the table's TID-bitset index: the intersection bitmap
// of a frequent (k-1)-itemset is materialized once per join partner
// and each candidate is one AND+popcount pass against the extension
// item's posting list. Tables with cardinality above indexMaxK fall
// back to scan counting, whose memory stays O(rows).
func FrequentItemsets(tb *table.Table, opt Options) ([]Frequent, error) {
	return FrequentItemsetsContext(context.Background(), tb, opt)
}

// FrequentItemsetsContext is FrequentItemsets under a context:
// cancellation is polled every Options.Run.CheckEvery counted
// candidates (DefaultCheckEvery when unset) and between levels, and
// ctx.Err() is returned promptly, discarding partial results.
// Bit-identical to FrequentItemsets when never canceled.
func FrequentItemsetsContext(ctx context.Context, tb *table.Table, opt Options) ([]Frequent, error) {
	if tb.NumRows() == 0 {
		return nil, errors.New("apriori: empty table")
	}
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("apriori: MinSupport %v outside (0,1]", opt.MinSupport)
	}
	chk := runopt.NewChecker(ctx, opt.Run.Stride(), DefaultCheckEvery)
	prog := runopt.NewMeter(runopt.PhaseApriori, opt.MaxLen, opt.Run.Func())
	n := tb.NumRows()
	minCount := minCountFor(opt.MinSupport, n)
	var ix *table.Index
	var scratch []uint64
	if tb.K() <= indexMaxK {
		ix = tb.Index()
		scratch = make([]uint64, ix.Words())
	}

	var all []Frequent
	// L1 from the index's cached posting counts, or per-column
	// histograms on the scan path.
	var level []Frequent
	for a := 0; a < tb.NumAttrs(); a++ {
		var counts []int
		if ix == nil {
			counts = tb.ValueCounts(a)
		}
		for v := 1; v <= tb.K(); v++ {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			c := 0
			if ix != nil {
				c = ix.Count(a, table.Value(v))
			} else {
				c = counts[v-1]
			}
			if c >= minCount {
				level = append(level, Frequent{
					Items:   []core.Item{{Attr: a, Val: table.Value(v)}},
					Count:   c,
					Support: float64(c) / float64(n),
				})
			}
		}
	}
	sortFrequent(level)
	all = append(all, level...)
	prog.Tick(1)
	var levelIDs [][]uint64
	for size := 2; len(level) > 0 && (opt.MaxLen == 0 || size <= opt.MaxLen); size++ {
		if err := chk.Err(); err != nil {
			return nil, err
		}
		// Encoded ids of the previous level, in level order — which is
		// lexicographic, so subset membership is a binary search over
		// fixed-width ids instead of a string-keyed set.
		levelIDs = levelIDs[:0]
		for _, f := range level {
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			levelIDs = append(levelIDs, appendIDs(make([]uint64, 0, size-1), f.Items))
		}
		idBuf := make([]uint64, 0, size)
		var next []Frequent
		for i := 0; i < len(level); i++ {
			a := level[i].Items
			// Intersection bitmap of a's postings, materialized
			// lazily on the first surviving join partner and shared
			// by all of them.
			var aBits []uint64
			for j := i + 1; j < len(level); j++ {
				b := level[j].Items
				if !samePrefix(a, b) {
					break // level is sorted; later j cannot match either
				}
				last := b[len(b)-1]
				if !itemLess(a[len(a)-1], last) {
					continue
				}
				if a[len(a)-1].Attr == last.Attr {
					continue // one value per attribute
				}
				cand := append(append(make([]core.Item, 0, size), a...), last)
				if !allSubsetsFrequent(cand, levelIDs, idBuf) {
					continue
				}
				if err := chk.Tick(); err != nil {
					return nil, err
				}
				var c int
				if ix != nil {
					if aBits == nil {
						aBits = intersectItems(ix, a, scratch)
					}
					c = table.PopcountAnd(aBits, ix.Posting(last.Attr, last.Val))
				} else {
					c = core.SupportCount(tb, cand)
				}
				if c >= minCount {
					next = append(next, Frequent{Items: cand, Count: c, Support: float64(c) / float64(n)})
				}
			}
		}
		level = next
		sortFrequent(level)
		all = append(all, level...)
		if len(level) > 0 {
			prog.Tick(1)
		}
	}
	return all, nil
}

func samePrefix(a, b []core.Item) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent is the downward-closure prune. The two subsets
// obtained by dropping either of the last two items are the join
// parents and frequent by construction, so only earlier drops are
// checked. idBuf is scratch with capacity >= len(cand)-1.
func allSubsetsFrequent(cand []core.Item, prev [][]uint64, idBuf []uint64) bool {
	for drop := 0; drop <= len(cand)-3; drop++ {
		ids := idBuf[:0]
		for i, it := range cand {
			if i != drop {
				ids = append(ids, itemID(it))
			}
		}
		if !containsIDs(prev, ids) {
			return false
		}
	}
	return true
}

func sortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Items, fs[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return itemLess(a[k], b[k])
			}
		}
		return len(a) < len(b)
	})
}

// itemsetKey overwrites buf with the items' fixed-width encodings and
// returns it, for use as a map key. Lookups written as
// index[string(key)] do not allocate.
func itemsetKey(items []core.Item, buf []byte) []byte {
	buf = buf[:0]
	for _, it := range items {
		buf = binary.BigEndian.AppendUint64(buf, itemID(it))
	}
	return buf
}

// GenerateRules produces every rule X => Y with nonempty X and Y
// partitioning a frequent itemset, keeping those whose confidence
// clears minConfidence. Support values come from the frequent-set
// index, so no further table scans happen.
//
// The confidence cut compares the exact value reported in
// Rule.Confidence (the float64 division of the two counts) directly
// against minConfidence, so a rule whose confidence equals the
// threshold is kept — the same exact-threshold contract as
// FrequentItemsets' minCountFor.
func GenerateRules(freq []Frequent, minConfidence float64) ([]Rule, error) {
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("apriori: minConfidence %v outside [0,1]", minConfidence)
	}
	index := make(map[string]Frequent, len(freq))
	var kb []byte
	for _, f := range freq {
		kb = itemsetKey(f.Items, kb)
		index[string(kb)] = f
	}
	var rules []Rule
	for _, f := range freq {
		k := len(f.Items)
		if k < 2 {
			continue
		}
		// Enumerate nonempty proper subsets as antecedents.
		for mask := 1; mask < (1<<k)-1; mask++ {
			var x, y []core.Item
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					x = append(x, f.Items[i])
				} else {
					y = append(y, f.Items[i])
				}
			}
			kb = itemsetKey(x, kb)
			fx, ok := index[string(kb)]
			if !ok {
				continue // antecedent infrequent (cannot happen by closure, but be safe)
			}
			conf := float64(f.Count) / float64(fx.Count)
			if conf < minConfidence {
				continue
			}
			r := Rule{X: x, Y: y, Support: f.Support, Confidence: conf}
			kb = itemsetKey(y, kb)
			if fy, ok := index[string(kb)]; ok && fy.Support > 0 {
				r.Lift = conf / fy.Support
			}
			rules = append(rules, r)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules, nil
}

// Mine is the one-call convenience: frequent itemsets then rules.
func Mine(tb *table.Table, opt Options, minConfidence float64) ([]Rule, error) {
	return MineContext(context.Background(), tb, opt, minConfidence)
}

// MineContext is Mine under a context. The frequent-itemset phase is
// cancellation-aware; rule generation is pure in-memory enumeration
// over the already-mined sets and is checked once between phases.
func MineContext(ctx context.Context, tb *table.Table, opt Options, minConfidence float64) ([]Rule, error) {
	freq, err := FrequentItemsetsContext(ctx, tb, opt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return GenerateRules(freq, minConfidence)
}
