// Package apriori implements the classical association-rule mining
// background the paper builds on (§1.1): level-wise Apriori frequent
// itemset mining [AS94] over (attribute, value) items — the
// quantitative-rule setting of [SA96] on an already-discretized table —
// and confidence-thresholded rule generation. It serves as the
// baseline the directed-hypergraph model is motivated against, and its
// support/confidence numbers cross-check internal/core's.
package apriori

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hypermine/internal/core"
	"hypermine/internal/table"
)

// Options controls the miner.
type Options struct {
	// MinSupport is the fraction of observations an itemset must
	// match to be frequent. Must be positive (Apriori's pruning
	// depends on it).
	MinSupport float64
	// MaxLen caps itemset size; 0 means unlimited.
	MaxLen int
}

// Frequent is one frequent itemset with its support count.
type Frequent struct {
	Items   []core.Item // sorted by (Attr, Val)
	Count   int
	Support float64
}

// Rule is a classical association rule X => Y with quality measures.
type Rule struct {
	X, Y       []core.Item
	Support    float64 // Supp(X u Y)
	Confidence float64 // Supp(X u Y) / Supp(X)
	Lift       float64 // Confidence / Supp(Y)
}

func itemLess(a, b core.Item) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	return a.Val < b.Val
}

func key(items []core.Item) string {
	var sb strings.Builder
	for i, it := range items {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(strconv.Itoa(it.Attr))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(int(it.Val)))
	}
	return sb.String()
}

// FrequentItemsets runs level-wise Apriori on the table: L1 is the
// frequent single items; candidates of size k join two frequent
// (k-1)-itemsets sharing their first k-2 items, are pruned by the
// downward-closure property, and survive if their counted support
// clears MinSupport. Itemsets never repeat an attribute — in the
// multi-valued setting two values of one attribute cannot co-occur in
// a row.
func FrequentItemsets(tb *table.Table, opt Options) ([]Frequent, error) {
	if tb.NumRows() == 0 {
		return nil, errors.New("apriori: empty table")
	}
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("apriori: MinSupport %v outside (0,1]", opt.MinSupport)
	}
	n := tb.NumRows()
	minCount := int(opt.MinSupport * float64(n))
	if float64(minCount) < opt.MinSupport*float64(n) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	var all []Frequent
	// L1 from per-column histograms.
	var level []Frequent
	for a := 0; a < tb.NumAttrs(); a++ {
		for v, c := range tb.ValueCounts(a) {
			if c >= minCount {
				level = append(level, Frequent{
					Items:   []core.Item{{Attr: a, Val: table.Value(v + 1)}},
					Count:   c,
					Support: float64(c) / float64(n),
				})
			}
		}
	}
	sortFrequent(level)
	all = append(all, level...)

	for size := 2; len(level) > 0 && (opt.MaxLen == 0 || size <= opt.MaxLen); size++ {
		prevKeys := make(map[string]bool, len(level))
		for _, f := range level {
			prevKeys[key(f.Items)] = true
		}
		// Candidate generation: join itemsets sharing the first
		// size-2 items.
		var cands [][]core.Item
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i].Items, level[j].Items
				if !samePrefix(a, b) {
					break // level is sorted; later j cannot match either
				}
				last := b[len(b)-1]
				if !itemLess(a[len(a)-1], last) {
					continue
				}
				if a[len(a)-1].Attr == last.Attr {
					continue // one value per attribute
				}
				cand := append(append([]core.Item(nil), a...), last)
				if !allSubsetsFrequent(cand, prevKeys) {
					continue
				}
				cands = append(cands, cand)
			}
		}
		// Support counting in one table scan per candidate batch.
		level = level[:0]
		for _, cand := range cands {
			c := core.SupportCount(tb, cand)
			if c >= minCount {
				level = append(level, Frequent{Items: cand, Count: c, Support: float64(c) / float64(n)})
			}
		}
		sortFrequent(level)
		all = append(all, level...)
	}
	return all, nil
}

func samePrefix(a, b []core.Item) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []core.Item, prev map[string]bool) bool {
	buf := make([]core.Item, 0, len(cand)-1)
	for drop := range cand {
		buf = buf[:0]
		for i, it := range cand {
			if i != drop {
				buf = append(buf, it)
			}
		}
		if !prev[key(buf)] {
			return false
		}
	}
	return true
}

func sortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Items, fs[j].Items
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return itemLess(a[k], b[k])
			}
		}
		return len(a) < len(b)
	})
}

// GenerateRules produces every rule X => Y with nonempty X and Y
// partitioning a frequent itemset, keeping those whose confidence
// clears minConfidence. Support values come from the frequent-set
// index, so no further table scans happen.
func GenerateRules(freq []Frequent, minConfidence float64) ([]Rule, error) {
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("apriori: minConfidence %v outside [0,1]", minConfidence)
	}
	index := make(map[string]Frequent, len(freq))
	for _, f := range freq {
		index[key(f.Items)] = f
	}
	var rules []Rule
	for _, f := range freq {
		k := len(f.Items)
		if k < 2 {
			continue
		}
		// Enumerate nonempty proper subsets as antecedents.
		for mask := 1; mask < (1<<k)-1; mask++ {
			var x, y []core.Item
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					x = append(x, f.Items[i])
				} else {
					y = append(y, f.Items[i])
				}
			}
			fx, ok := index[key(x)]
			if !ok {
				continue // antecedent infrequent (cannot happen by closure, but be safe)
			}
			conf := float64(f.Count) / float64(fx.Count)
			if conf < minConfidence {
				continue
			}
			r := Rule{X: x, Y: y, Support: f.Support, Confidence: conf}
			if fy, ok := index[key(y)]; ok && fy.Support > 0 {
				r.Lift = conf / fy.Support
			}
			rules = append(rules, r)
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		return rules[i].Support > rules[j].Support
	})
	return rules, nil
}

// Mine is the one-call convenience: frequent itemsets then rules.
func Mine(tb *table.Table, opt Options, minConfidence float64) ([]Rule, error) {
	freq, err := FrequentItemsets(tb, opt)
	if err != nil {
		return nil, err
	}
	return GenerateRules(freq, minConfidence)
}
