package apriori

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

func ctxAprioriTable(t *testing.T) *table.Table {
	t.Helper()
	names := []string{"A", "B", "C", "D", "E", "F"}
	tb, err := table.New(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]table.Value, len(names))
	for r := 0; r < 300; r++ {
		for a := range row {
			row[a] = table.Value(1 + (r*3+a*5+r*a)%3)
		}
		if err := tb.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

// TestFrequentItemsetsContextBackgroundIdentical proves the context
// form matches FrequentItemsets bit for bit when never canceled, with
// progress/stride hooks set and on both the bitset and scan paths.
func TestFrequentItemsetsContextBackgroundIdentical(t *testing.T) {
	tb := ctxAprioriTable(t)
	opt := Options{MinSupport: 0.05}
	want, err := FrequentItemsets(tb, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FrequentItemsetsContext(context.Background(), tb, Options{
		MinSupport: 0.05,
		Run:        &runopt.Hooks{CheckEvery: 1, Progress: func(runopt.Phase, int, int) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("FrequentItemsetsContext(Background) differs from FrequentItemsets")
	}
	rulesWant, err := Mine(tb, opt, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rulesGot, err := MineContext(context.Background(), tb, opt, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rulesWant, rulesGot) {
		t.Fatal("MineContext(Background) differs from Mine")
	}
}

func TestFrequentItemsetsContextCancel(t *testing.T) {
	tb := ctxAprioriTable(t)
	// Pre-canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := FrequentItemsetsContext(ctx, tb, Options{
		MinSupport: 0.05,
		Run:        &runopt.Hooks{CheckEvery: 1},
	})
	if got != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled: want (nil, Canceled), got (%v, %v)", got, err)
	}
	// Mid-flight: cancel once level 1 completes; the candidate polling
	// of level 2 (stride 1 candidate) observes it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	got, err = FrequentItemsetsContext(ctx2, tb, Options{
		MinSupport: 0.05,
		Run: &runopt.Hooks{
			CheckEvery: 1,
			Progress: func(ph runopt.Phase, done, total int) {
				if done == 1 {
					cancel2()
				}
			},
		},
	})
	if got != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight: want (nil, Canceled), got (%v, %v)", got, err)
	}
}
