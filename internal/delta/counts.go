// Persistent joint-count tables: the integer numerators behind every
// ACV the builder computes, maintainable in O(appended) time per
// append. Layout is flat int32 arrays indexed by precomputed offsets —
// unordered attribute pairs (a<b) carry k² cells, unordered triples
// (a<b<c) carry k³ cells, and one triple array serves all three head
// choices of a 2-to-1 candidate by striding the roles.
package delta

import (
	"context"

	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// seedCheckEvery is the joint-cell stride between context polls while
// seeding; one cell is a PopcountAnd over the posting words.
const seedCheckEvery = 64

// countBytes is the resident size of the count tables for n attributes
// at cardinality k: value counts, pair cells, and (for MaxTailSize >=
// 2) triple cells, 4 bytes each.
func countBytes(n, k int, maxTailSize int) int64 {
	nn := int64(n)
	kk := int64(k)
	b := 4 * (nn*kk + nn*(nn-1)/2*kk*kk)
	if maxTailSize >= 2 {
		b += 4 * (nn * (nn - 1) * (nn - 2) / 6 * kk * kk * kk)
	}
	return b
}

type jointCounts struct {
	n, k int
	rows int

	val  []int32 // val[a*k + (v-1)]
	pair []int32 // pair (a<b) at pairBase(a,b), k*k cells: (va-1)*k+(vb-1)
	// triple (a<b<c) at tripleBase(a,b,c), k*k*k cells:
	// ((va-1)*k+(vb-1))*k+(vc-1). nil when MaxTailSize < 2.
	triple []int32

	pairOff   []int   // pairOff[a]: ordinal of pair (a, a+1)
	tripleOff [][]int // tripleOff[a][b-a-1]: ordinal of triple (a, b, b+1)
}

func (jc *jointCounts) pairBase(a, b int) int {
	return (jc.pairOff[a] + b - a - 1) * jc.k * jc.k
}

func (jc *jointCounts) tripleBase(a, b, c int) int {
	return (jc.tripleOff[a][b-a-1] + c - b - 1) * jc.k * jc.k * jc.k
}

// seedCounts builds the tables for tb's current rows from its
// TID-bitset index: every joint cell is one PopcountAnd over posting
// bitmaps (two for pairs; triples AND the pair once into a scratch
// buffer and popcount against each head posting), so seeding costs
// about one stage-2 mining pass and never rescans rows column-wise.
func seedCounts(ctx context.Context, tb *table.Table, maxTailSize int) (*jointCounts, error) {
	n, k := tb.NumAttrs(), tb.K()
	jc := &jointCounts{
		n: n, k: k, rows: tb.NumRows(),
		val:     make([]int32, n*k),
		pair:    make([]int32, n*(n-1)/2*k*k),
		pairOff: make([]int, n),
	}
	off := 0
	for a := 0; a < n; a++ {
		jc.pairOff[a] = off
		off += n - a - 1
	}
	ix := tb.Index()
	chk := runopt.NewChecker(ctx, 0, seedCheckEvery)
	for a := 0; a < n; a++ {
		for v := 1; v <= k; v++ {
			jc.val[a*k+v-1] = int32(ix.Count(a, table.Value(v)))
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			base := jc.pairBase(a, b)
			for va := 1; va <= k; va++ {
				pa := ix.Posting(a, table.Value(va))
				for vb := 1; vb <= k; vb++ {
					if err := chk.Tick(); err != nil {
						return nil, err
					}
					jc.pair[base+(va-1)*k+(vb-1)] = int32(table.PopcountAnd(pa, ix.Posting(b, table.Value(vb))))
				}
			}
		}
	}
	if maxTailSize < 2 {
		return jc, nil
	}
	jc.triple = make([]int32, n*(n-1)*(n-2)/6*k*k*k)
	jc.tripleOff = make([][]int, n)
	off = 0
	for a := 0; a < n; a++ {
		jc.tripleOff[a] = make([]int, n-a-1)
		for b := a + 1; b < n; b++ {
			jc.tripleOff[a][b-a-1] = off
			off += n - b - 1
		}
	}
	buf := make([]uint64, ix.Words())
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for va := 1; va <= k; va++ {
				pa := ix.Posting(a, table.Value(va))
				for vb := 1; vb <= k; vb++ {
					copy(buf, pa)
					table.AndInto(buf, ix.Posting(b, table.Value(vb)))
					cell := (va-1)*k + (vb - 1)
					for c := b + 1; c < n; c++ {
						base := jc.tripleBase(a, b, c) + cell*k
						for vc := 1; vc <= k; vc++ {
							if err := chk.Tick(); err != nil {
								return nil, err
							}
							jc.triple[base+vc-1] = int32(table.PopcountAnd(buf, ix.Posting(c, table.Value(vc))))
						}
					}
				}
			}
		}
	}
	return jc, nil
}

// add folds appended rows into the counts, polling ctx once per row.
// On cancellation the already-applied prefix is rolled back, so the
// tables always describe a whole number of appends.
func (jc *jointCounts) add(ctx context.Context, rows [][]table.Value) error {
	chk := runopt.NewChecker(ctx, 1, 1)
	for i, row := range rows {
		if err := chk.Tick(); err != nil {
			jc.sub(rows[:i])
			return err
		}
		jc.apply(row, 1)
	}
	jc.rows += len(rows)
	return nil
}

// sub removes rows previously folded in by add (rollback path).
func (jc *jointCounts) sub(rows [][]table.Value) {
	for _, row := range rows {
		jc.apply(row, -1)
	}
}

func (jc *jointCounts) apply(row []table.Value, sign int32) {
	n, k := jc.n, jc.k
	kk := k * k
	for a := 0; a < n; a++ {
		jc.val[a*k+int(row[a])-1] += sign
	}
	for a := 0; a < n; a++ {
		va := int(row[a]) - 1
		pbase := jc.pairOff[a]
		for b := a + 1; b < n; b++ {
			jc.pair[(pbase+b-a-1)*kk+va*k+int(row[b])-1] += sign
		}
	}
	if jc.triple == nil {
		return
	}
	kkk := kk * k
	for a := 0; a < n; a++ {
		va := int(row[a]) - 1
		offA := jc.tripleOff[a]
		for b := a + 1; b < n; b++ {
			cell := (va*k + int(row[b]) - 1) * k
			tbase := offA[b-a-1]
			for c := b + 1; c < n; c++ {
				jc.triple[(tbase+c-b-1)*kkk+cell+int(row[c])-1] += sign
			}
		}
	}
}

// edgeACV computes ACV({a},{c}) from the pair counts: the sum over
// tail values of the best head-value joint count, over the row count —
// the same integers acvEdgeBits popcounts, hence the same float64.
func (jc *jointCounts) edgeACV(a, c int) float64 {
	k := jc.k
	var sum int64
	if a < c {
		cells := jc.pair[jc.pairBase(a, c):]
		for va := 0; va < k; va++ {
			best := int32(0)
			for _, v := range cells[va*k : va*k+k] {
				if v > best {
					best = v
				}
			}
			sum += int64(best)
		}
	} else {
		cells := jc.pair[jc.pairBase(c, a):]
		for va := 0; va < k; va++ {
			best := int32(0)
			for vc := 0; vc < k; vc++ {
				if v := cells[vc*k+va]; v > best {
					best = v
				}
			}
			sum += int64(best)
		}
	}
	return float64(sum) / float64(jc.rows)
}

// pairACV computes ACV({a,b},{c}) from the triple counts. The triple
// array stores sorted (x<y<z) cells once; the roles of a, b, c map to
// strides k², k, 1 by sorted position, so one array serves every head
// choice.
func (jc *jointCounts) pairACV(a, b, c int) float64 {
	k := jc.k
	x, y, z := sort3(a, b, c)
	base := jc.tripleBase(x, y, z)
	stride := func(attr int) int {
		switch attr {
		case x:
			return k * k
		case y:
			return k
		default:
			return 1
		}
	}
	sa, sb, sc := stride(a), stride(b), stride(c)
	var sum int64
	for va := 0; va < k; va++ {
		for vb := 0; vb < k; vb++ {
			off := base + va*sa + vb*sb
			best := int32(0)
			for vc := 0; vc < k; vc++ {
				if v := jc.triple[off+vc*sc]; v > best {
					best = v
				}
			}
			sum += int64(best)
		}
	}
	return float64(sum) / float64(jc.rows)
}

// sort3 orders three distinct ints ascending.
func sort3(a, b, c int) (int, int, int) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}
