package delta_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/delta"
	"hypermine/internal/table"
)

// genRows draws n rows whose attributes correlate through a hidden
// state, with per-attribute noise; bias shifts the correlation so
// append schedules drift the distribution and cross admission
// thresholds in both directions.
func genRows(rng *rand.Rand, n, attrs, k int, noise float64, bias int) [][]table.Value {
	rows := make([][]table.Value, n)
	for i := range rows {
		hidden := rng.Intn(k)
		row := make([]table.Value, attrs)
		for j := range row {
			v := hidden
			if rng.Float64() < noise {
				v = rng.Intn(k)
			}
			if bias != 0 && j%2 == 1 {
				v = (v + bias) % k
			}
			row[j] = table.Value(1 + v)
		}
		rows[i] = row
	}
	return rows
}

// modelsEqual asserts bit-for-bit equality of two models: edge count,
// per-edge tail/head/weight (exact float bits), and the full EdgeACV
// cache.
func modelsEqual(t *testing.T, got, want *core.Model) {
	t.Helper()
	if got.Table.NumRows() != want.Table.NumRows() {
		t.Fatalf("rows: got %d want %d", got.Table.NumRows(), want.Table.NumRows())
	}
	if g, w := got.H.NumEdges(), want.H.NumEdges(); g != w {
		t.Fatalf("edges: got %d want %d", g, w)
	}
	for i := 0; i < want.H.NumEdges(); i++ {
		ge, we := got.H.Edge(i), want.H.Edge(i)
		if len(ge.Tail) != len(we.Tail) || len(ge.Head) != len(we.Head) {
			t.Fatalf("edge %d shape: got %v->%v want %v->%v", i, ge.Tail, ge.Head, we.Tail, we.Head)
		}
		for j := range we.Tail {
			if ge.Tail[j] != we.Tail[j] {
				t.Fatalf("edge %d tail: got %v want %v", i, ge.Tail, we.Tail)
			}
		}
		for j := range we.Head {
			if ge.Head[j] != we.Head[j] {
				t.Fatalf("edge %d head: got %v want %v", i, ge.Head, we.Head)
			}
		}
		if math.Float64bits(ge.Weight) != math.Float64bits(we.Weight) {
			t.Fatalf("edge %d weight: got %x want %x (%.17g vs %.17g)",
				i, math.Float64bits(ge.Weight), math.Float64bits(we.Weight), ge.Weight, we.Weight)
		}
	}
	if len(got.EdgeACV) != len(want.EdgeACV) {
		t.Fatalf("EdgeACV len: got %d want %d", len(got.EdgeACV), len(want.EdgeACV))
	}
	for i := range want.EdgeACV {
		if math.Float64bits(got.EdgeACV[i]) != math.Float64bits(want.EdgeACV[i]) {
			t.Fatalf("EdgeACV[%d]: got %.17g want %.17g", i, got.EdgeACV[i], want.EdgeACV[i])
		}
	}
}

// fullRemine builds the ground truth: core.Build on the concatenated
// table (fresh copy so no index state is shared with the dataset).
func fullRemine(t *testing.T, attrs []string, k int, all [][]table.Value, cfg core.Config) *core.Model {
	t.Helper()
	tb, err := table.FromRows(attrs, k, all)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// attrNames generates attribute names a0..a{n-1}.
func attrNames(n int) []string {
	names := make([]string, n)
	for j := range names {
		names[j] = "a" + string(rune('0'+j/10)) + string(rune('0'+j%10))
	}
	return names
}

// runSchedule is the differential harness: mine a base table, wrap it
// in a Dataset, run a randomized append schedule (drifting the
// distribution so admissions cross thresholds both ways), and after
// every step require delta.Apply ≡ core.Build on the concatenated
// table, bit for bit.
func runSchedule(t *testing.T, seed int64, attrs, k int, cfg core.Config, opts delta.Options, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := attrNames(attrs)
	all := genRows(rng, 60+rng.Intn(120), attrs, k, 0.25, 0)
	base, err := table.FromRows(names, k, all)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := delta.New(m0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		// Drift hard every other step: high-noise anti-correlated
		// batches demote edges, clean correlated batches promote them.
		noise := 0.15
		bias := 0
		if step%2 == 1 {
			noise = 0.9
			bias = 1 + rng.Intn(k-1)
		}
		batch := genRows(rng, 1+rng.Intn(80), attrs, k, noise, bias)
		all = append(all, batch...)
		got, ch, err := ds.AppendRowsContext(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		if ch.Appended != len(batch) {
			t.Fatalf("step %d: Changes.Appended=%d want %d", step, ch.Appended, len(batch))
		}
		modelsEqual(t, got, fullRemine(t, names, k, all, cfg))
	}
}

func TestDifferentialDefaultConfig(t *testing.T) {
	runSchedule(t, 1, 8, 3, core.C1(), delta.Options{}, 6)
}

func TestDifferentialC2(t *testing.T) {
	runSchedule(t, 2, 6, 5, core.C2(), delta.Options{}, 5)
}

func TestDifferentialEdgeSeeded(t *testing.T) {
	cfg := core.C1()
	cfg.Candidates = core.EdgeSeeded
	runSchedule(t, 3, 8, 3, cfg, delta.Options{}, 5)
}

func TestDifferentialMaxTailSize1(t *testing.T) {
	cfg := core.C1()
	cfg.MaxTailSize = 1
	runSchedule(t, 4, 9, 3, cfg, delta.Options{}, 5)
}

func TestDifferentialMaxTailSize3(t *testing.T) {
	cfg := core.C1()
	cfg.MaxTailSize = 3
	cfg.GammaTriple = 1.02
	runSchedule(t, 5, 6, 3, cfg, delta.Options{}, 4)
}

// TestDifferentialScalarKernels drives k past the bitset crossover
// (bitsMaxK = 8) so the ground-truth build uses the scalar reference
// kernels — the maintained counts must match those bit for bit too.
func TestDifferentialScalarKernels(t *testing.T) {
	cfg := core.Config{K: 9, GammaEdge: 1.1, GammaPair: 1.03}
	runSchedule(t, 6, 5, 9, cfg, delta.Options{}, 4)
}

// TestDifferentialFallback pins the over-memory-cap path: every apply
// is a full re-mine, and the result is still exactly the ground truth.
func TestDifferentialFallback(t *testing.T) {
	runSchedule(t, 7, 6, 3, core.C1(), delta.Options{MaxCountBytes: -1}, 3)
}

// TestThresholdCrossingsBothDirections pins, with crafted rows rather
// than random drift, that an append can demote a previously admitted
// edge and promote a previously rejected one, and the incremental
// model tracks both transitions exactly.
func TestThresholdCrossingsBothDirections(t *testing.T) {
	cfg := core.Config{K: 2, GammaEdge: 1.3, GammaPair: 1.05}
	names := []string{"x", "y", "z"}
	// Base: x and y perfectly correlated (edge x->y strong), z random.
	var base [][]table.Value
	for i := 0; i < 40; i++ {
		v := table.Value(1 + i%2)
		z := table.Value(1 + (i/2)%2)
		base = append(base, []table.Value{v, v, z})
	}
	tb, err := table.FromRows(names, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m0.H.Lookup([]int{0}, []int{1}); !ok {
		t.Fatal("precondition: edge x->y not admitted in base model")
	}
	if _, ok := m0.H.Lookup([]int{2}, []int{1}); ok {
		t.Fatal("precondition: edge z->y admitted in base model")
	}
	ds, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Append: x independent of y (demotes x->y — note anti-correlation
	// would not, since a flipped value is still perfectly predictive),
	// z perfectly correlated with y (promotes z->y).
	var batch [][]table.Value
	for i := 0; i < 120; i++ {
		y := table.Value(1 + i%2)
		x := table.Value(1 + (i/2)%2)
		batch = append(batch, []table.Value{x, y, y})
	}
	all := append(append([][]table.Value{}, base...), batch...)
	got, _, err := ds.AppendRowsContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.H.Lookup([]int{0}, []int{1}); ok {
		t.Fatal("edge x->y should have been demoted by the anti-correlated append")
	}
	if _, ok := got.H.Lookup([]int{2}, []int{1}); !ok {
		t.Fatal("edge z->y should have been promoted by the correlated append")
	}
	modelsEqual(t, got, fullRemine(t, names, 2, all, cfg))
}

// TestNoOpAppend pins that a zero-row append returns the previous
// model unchanged (same pointer) with Changes.Unchanged().
func TestNoOpAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tb, err := table.FromRows(attrNames(5), 3, genRows(rng, 50, 5, 3, 0.3, 0))
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, core.C1())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ch, err := ds.AppendRowsContext(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != m0 {
		t.Fatal("no-op append returned a different model")
	}
	if !ch.Unchanged() {
		t.Fatalf("no-op append reported changes: %+v", ch)
	}
}

// TestStructuralSharing pins that edges surviving an append share
// their vertex-id slices with the previous model's edges.
func TestStructuralSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tb, err := table.FromRows(attrNames(6), 3, genRows(rng, 200, 6, 3, 0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, core.C1())
	if err != nil {
		t.Fatal(err)
	}
	if m0.H.NumEdges() == 0 {
		t.Fatal("precondition: base model has no edges")
	}
	ds, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny low-drift append keeps the edge set stable.
	got, ch, err := ds.AppendRowsContext(context.Background(), genRows(rng, 3, 6, 3, 0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ch.SharedEdges == 0 {
		t.Fatalf("no structural sharing after a small append: %+v", ch)
	}
	shared := 0
	for i := 0; i < got.H.NumEdges(); i++ {
		e := got.H.Edge(i)
		if id, ok := m0.H.Lookup(e.Tail, e.Head); ok {
			old := m0.H.Edge(id)
			if &e.Tail[0] == &old.Tail[0] {
				shared++
			}
		}
	}
	if shared != ch.SharedEdges {
		t.Fatalf("slice-identity sharing %d != reported SharedEdges %d", shared, ch.SharedEdges)
	}
}

// TestAppendRawMatchesRows pins that the column-major raw path yields
// the same model as the row-major path.
func TestAppendRawMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tb, err := table.FromRows(attrNames(5), 3, genRows(rng, 80, 5, 3, 0.3, 0))
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, core.C1())
	if err != nil {
		t.Fatal(err)
	}
	dsRows, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dsRaw, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch := genRows(rng, 15, 5, 3, 0.6, 1)
	cols := make([][]byte, 5)
	for j := range cols {
		cols[j] = make([]byte, len(batch))
		for i, row := range batch {
			cols[j][i] = byte(row[j])
		}
	}
	byRows, _, err := dsRows.AppendRowsContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	byRaw, _, err := dsRaw.AppendRawContext(context.Background(), cols)
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, byRaw, byRows)
}

// TestCanceledAppendLeavesDatasetIntact pins the rollback: a canceled
// apply must not move the dataset, and a later append must still be
// exactly right.
func TestCanceledAppendLeavesDatasetIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	names := attrNames(5)
	all := genRows(rng, 60, 5, 3, 0.3, 0)
	tb, err := table.FromRows(names, 3, all)
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, core.C1())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ds.AppendRowsContext(ctx, genRows(rng, 20, 5, 3, 0.5, 1)); err == nil {
		t.Fatal("canceled append succeeded")
	}
	if ds.Model() != m0 {
		t.Fatal("canceled append moved the dataset's model")
	}
	batch := genRows(rng, 10, 5, 3, 0.4, 0)
	all = append(all, batch...)
	got, _, err := ds.AppendRowsContext(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, got, fullRemine(t, names, 3, all, core.C1()))
}

// TestInvalidAppendRejected pins validation atomicity at the dataset
// level.
func TestInvalidAppendRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tb, err := table.FromRows(attrNames(4), 3, genRows(rng, 30, 4, 3, 0.3, 0))
	if err != nil {
		t.Fatal(err)
	}
	m0, err := core.Build(tb, core.C1())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := delta.New(m0, delta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.AppendRowsContext(context.Background(), [][]table.Value{{1, 2, 3, 9}}); err == nil {
		t.Fatal("out-of-range value accepted")
	}
	if _, _, err := ds.AppendRowsContext(context.Background(), [][]table.Value{{1, 2}}); err == nil {
		t.Fatal("short row accepted")
	}
	if ds.Model() != m0 {
		t.Fatal("failed append moved the dataset's model")
	}
}
