// Package delta is the incremental mining subsystem: it turns a mined
// (Table, Model) pair into a live dataset that accepts appended
// observations and republishes an updated model without a full
// re-mine.
//
// # How it stays bit-identical to a full re-mine
//
// Every ACV the builder computes is an integer sum divided by the row
// count: ACV(T, {C}) = (Σ over tail cells of the max head-value joint
// count) / rows. The integer numerators are exactly maintainable under
// appends, so a Dataset keeps persistent joint-count tables —
// per-attribute value counts, unordered-pair counts (k² cells per
// attribute pair), and unordered-triple counts (k³ cells per attribute
// triple) — and updates them in O(appended · n³) increment time per
// append, with no rescans of old rows. Re-deriving the model from the
// updated counts reproduces the exact integer sums of
// core.BuildContext on the concatenated table, hence the exact float64
// ACVs, the exact gamma-significance admissions, and the exact edge
// order. The differential tests in this package pin that equivalence,
// bit for bit, across randomized append schedules.
//
// Counts are seeded once per Dataset from the table's TID-bitset index
// (the PR-1 bitmap kernels: one PopcountAnd per joint cell), and the
// index itself is extended copy-on-write per append (see
// table.AppendRows), so no stage of the pipeline rescans old rows.
//
// A MaxTailSize=3 configuration would need 4-way joint counts to
// delta-update stage 3; instead the Dataset maintains counts through
// stage 2 and finishes with core.BuildTriplesContext — the very
// function a full build runs — on the concatenated table, keeping
// bit-for-bit equivalence at the cost of one stage-3 pass.
//
// # Structural sharing and fallback
//
// The emitted *core.Model is immutable and structurally shares the
// vertex-id slices of edges that also existed in the previous model
// (hypergraph.AddEdgeShared); only genuinely new edges allocate.
// Weights are stored by value, so shared slices are safe even though
// every ACV shifts when the denominator grows.
//
// If the joint-count tables would exceed Options.MaxCountBytes (large
// n·k), the Dataset degrades to a documented fallback: each append
// runs a full core.BuildContext on the concatenated table — still
// reusing the incrementally extended TID index — so correctness is
// unchanged and only the republish latency loses its incremental
// advantage.
package delta

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hypermine/internal/core"
	"hypermine/internal/hypergraph"
	"hypermine/internal/runopt"
	"hypermine/internal/table"
)

// DefaultMaxCountBytes bounds the joint-count tables at 256 MiB unless
// Options overrides it; past the bound the Dataset falls back to full
// re-mines per append.
const DefaultMaxCountBytes = 256 << 20

// Options tunes a Dataset.
type Options struct {
	// MaxCountBytes caps the persistent joint-count memory; 0 means
	// DefaultMaxCountBytes, negative means "no counts" (always fall
	// back to a full re-mine — used by tests to pin the fallback
	// path).
	MaxCountBytes int64
}

// Changes describes how one append moved the model, for the engine's
// targeted invalidation and for operator logs.
type Changes struct {
	// Appended is the number of observations this apply added. Zero
	// means the model is unchanged (Model returns the previous value).
	Appended int
	// EdgesBefore and EdgesAfter count hyperedges in the previous and
	// new model.
	EdgesBefore, EdgesAfter int
	// SharedEdges counts edges of the new model whose vertex-id slices
	// are structurally shared with the previous model.
	SharedEdges int
	// FullRebuild reports that this apply ran the full-re-mine
	// fallback instead of the count-maintained derivation.
	FullRebuild bool
}

// Unchanged reports whether the append was a no-op (zero rows), in
// which case every engine artifact of the previous generation remains
// exactly valid.
func (c Changes) Unchanged() bool { return c.Appended == 0 }

// Dataset is a live dataset: the latest published model plus the
// persistent joint counts that make the next append cheap. Methods are
// safe for concurrent use; appends serialize internally.
type Dataset struct {
	mu     sync.Mutex
	model  *core.Model
	cfg    core.Config
	opts   Options
	counts *jointCounts // nil = fallback mode (full re-mine per apply)
}

// New wraps an existing mined model into a live dataset, seeding the
// joint-count tables from the table's TID-bitset index (or arming the
// full-rebuild fallback if they would exceed the memory bound). The
// model must carry its training rows.
func New(m *core.Model, opts Options) (*Dataset, error) {
	return NewContext(context.Background(), m, opts)
}

// NewContext is New under a context; seeding polls ctx between joint
// cells and returns ctx.Err() promptly on cancellation.
func NewContext(ctx context.Context, m *core.Model, opts Options) (*Dataset, error) {
	if m == nil || m.H == nil {
		return nil, errors.New("delta: nil model")
	}
	if err := m.RequireRows(); err != nil {
		return nil, fmt.Errorf("delta: %w", err)
	}
	d := &Dataset{model: m, cfg: m.Config, opts: opts}
	if d.cfg.MaxTailSize == 0 {
		d.cfg.MaxTailSize = 2
	}
	if d.cfg.GammaTriple == 0 {
		d.cfg.GammaTriple = d.cfg.GammaPair
	}
	max := opts.MaxCountBytes
	if max == 0 {
		max = DefaultMaxCountBytes
	}
	tb := m.Table
	if max > 0 && countBytes(tb.NumAttrs(), tb.K(), d.cfg.MaxTailSize) <= max {
		jc, err := seedCounts(ctx, tb, d.cfg.MaxTailSize)
		if err != nil {
			return nil, err
		}
		d.counts = jc
	}
	return d, nil
}

// Model returns the latest model this dataset has published.
func (d *Dataset) Model() *core.Model {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.model
}

// CountBytes returns the resident size of the joint-count tables, or 0
// in fallback mode.
func (d *Dataset) CountBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counts == nil {
		return 0
	}
	return countBytes(d.counts.n, d.counts.k, d.cfg.MaxTailSize)
}

// AppendRowsContext appends observations (row-major, one value per
// attribute in 1..K), delta-updates the joint counts and the TID
// index, and re-derives the model. It returns the new immutable model;
// the previous model and its table are untouched and keep serving. On
// any error — validation, cancellation — the dataset is unchanged.
func (d *Dataset) AppendRowsContext(ctx context.Context, rows [][]table.Value) (*core.Model, Changes, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	nt, err := d.model.Table.AppendRows(rows)
	if err != nil {
		return nil, Changes{}, err
	}
	return d.applyLocked(ctx, nt, rows)
}

// AppendRawContext is AppendRowsContext for column-major raw bytes
// (cols[j] holds appended values of attribute j), the wire format of
// the `:append` endpoint.
func (d *Dataset) AppendRawContext(ctx context.Context, cols [][]byte) (*core.Model, Changes, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	nt, err := d.model.Table.AppendRaw(cols)
	if err != nil {
		return nil, Changes{}, err
	}
	added := nt.NumRows() - d.model.Table.NumRows()
	rows := make([][]table.Value, added)
	base := d.model.Table.NumRows()
	for i := range rows {
		if err := ctx.Err(); err != nil {
			return nil, Changes{}, err
		}
		rows[i] = nt.Row(base+i, nil)
	}
	return d.applyLocked(ctx, nt, rows)
}

// applyLocked publishes nt (the old table plus rows) as the new model.
// Caller holds d.mu; nt was produced by an Append on d.model.Table.
func (d *Dataset) applyLocked(ctx context.Context, nt *table.Table, rows [][]table.Value) (*core.Model, Changes, error) {
	old := d.model
	if len(rows) == 0 {
		// A no-op append changes no count and no ACV: the previous
		// model is already the model of the concatenated table.
		return old, Changes{EdgesBefore: old.H.NumEdges(), EdgesAfter: old.H.NumEdges()}, nil
	}
	ch := Changes{Appended: len(rows), EdgesBefore: old.H.NumEdges()}
	var m *core.Model
	if d.counts != nil {
		if err := d.counts.add(ctx, rows); err != nil {
			return nil, Changes{}, err
		}
		var err error
		m, err = d.derive(ctx, nt, &ch)
		if err != nil {
			// Roll the counts back so the dataset still matches
			// d.model exactly; a canceled apply must leave no trace.
			d.counts.sub(rows)
			return nil, Changes{}, err
		}
	} else {
		ch.FullRebuild = true
		cfg := d.cfg
		var err error
		m, err = core.BuildContext(ctx, nt, cfg)
		if err != nil {
			return nil, Changes{}, err
		}
	}
	ch.EdgesAfter = m.H.NumEdges()
	d.model = m
	return m, ch, nil
}

// derive re-runs the admission pipeline of core.BuildContext against
// the maintained joint counts: identical integer sums, identical
// float64 ACVs, identical admissions, identical edge order — with no
// scan of any row. Stage 3 (MaxTailSize=3) delegates to
// core.BuildTriplesContext on the concatenated table.
func (d *Dataset) derive(ctx context.Context, nt *table.Table, ch *Changes) (*core.Model, error) {
	jc := d.counts
	cfg := d.cfg
	oldH := d.model.H
	n, k := jc.n, jc.k
	model := &core.Model{Table: nt, Config: d.model.Config, EdgeACV: make([]float64, n*n)}
	h, err := hypergraph.New(nt.Attrs())
	if err != nil {
		return nil, err
	}
	model.H = h

	addEdge := func(tail, head []int, w float64) error {
		if id, ok := oldH.Lookup(tail, head); ok {
			e := oldH.Edge(id)
			ch.SharedEdges++
			return h.AddEdgeShared(e.Tail, e.Head, w)
		}
		return h.AddEdge(tail, head, w)
	}

	// Stage 1: directed edges. Baseline ACV(∅,{c}) is the max value
	// count over the rows; admissions mirror BuildContext's head-major
	// parallel stage, and edges land in the same (a, c) order.
	chk := runopt.NewChecker(ctx, cfg.Run.Stride(), core.DefaultCheckEvery)
	prog := runopt.NewMeter(runopt.PhaseEdges, n, cfg.Run.Func())
	null := make([]float64, n)
	for c := 0; c < n; c++ {
		best := int32(0)
		for v := 0; v < k; v++ {
			if x := jc.val[c*k+v]; x > best {
				best = x
			}
		}
		null[c] = float64(best) / float64(jc.rows)
	}
	edgeAdmit := make([]bool, n*n)
	for c := 0; c < n; c++ {
		for a := 0; a < n; a++ {
			if a == c {
				continue
			}
			if err := chk.Tick(); err != nil {
				return nil, err
			}
			acv := jc.edgeACV(a, c)
			model.EdgeACV[a*n+c] = acv
			if acv >= cfg.GammaEdge*null[c] {
				edgeAdmit[a*n+c] = true
			}
		}
		prog.Tick(1)
	}
	for a := 0; a < n; a++ {
		for c := 0; c < n; c++ {
			if edgeAdmit[a*n+c] {
				if err := addEdge([]int{a}, []int{c}, model.EdgeACV[a*n+c]); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.MaxTailSize < 2 {
		return model, nil
	}

	// Stage 2: 2-to-1 hyperedges from the triple counts. The serial
	// a<b, c loops produce the admitted list already in BuildContext's
	// post-sort (a, b, c) order.
	prog2 := runopt.NewMeter(runopt.PhasePairs, n*(n-1)/2, cfg.Run.Func())
	var admitted []core.TailPair
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := 0; c < n; c++ {
				if c == a || c == b {
					continue
				}
				if cfg.Candidates == core.EdgeSeeded && !edgeAdmit[a*n+c] && !edgeAdmit[b*n+c] {
					continue
				}
				if err := chk.Tick(); err != nil {
					return nil, err
				}
				base := model.EdgeACV[a*n+c]
				if x := model.EdgeACV[b*n+c]; x > base {
					base = x
				}
				acv := jc.pairACV(a, b, c)
				if acv >= cfg.GammaPair*base {
					admitted = append(admitted, core.TailPair{A: a, B: b, C: c, ACV: acv})
				}
			}
			prog2.Tick(1)
		}
	}
	for _, e := range admitted {
		if err := addEdge([]int{e.A, e.B}, []int{e.C}, e.ACV); err != nil {
			return nil, err
		}
	}
	if cfg.MaxTailSize < 3 {
		return model, nil
	}
	// Stage 3 runs the full builder's own triple stage on the
	// concatenated table — same function, same inputs, same result.
	if err := core.BuildTriplesContext(ctx, model, admitted, cfg); err != nil {
		return nil, err
	}
	return model, nil
}
