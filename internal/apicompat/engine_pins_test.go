package apicompat

import (
	"context"
	"testing"

	hypermine "hypermine"
)

// Compile-time pins of the prepared-model Engine surface introduced by
// the engine redesign. As with the v1 pins, each entry is the exact
// published signature: a refactor that changes any of them breaks this
// package before it breaks a caller.
var (
	_ func(*hypermine.Model, hypermine.EngineOptions) (*hypermine.Engine, error)                                              = hypermine.NewEngine
	_ func() hypermine.DominatorSpec                                                                                          = hypermine.DefaultDominatorSpec
	_ func(*hypermine.Engine, context.Context, *hypermine.EngineRequest) (*hypermine.EngineResponse, error)                   = (*hypermine.Engine).Do
	_ func(*hypermine.Engine, context.Context) (*hypermine.SimilarityGraph, error)                                            = (*hypermine.Engine).SimilarityGraph
	_ func(*hypermine.Engine, context.Context, hypermine.DominatorSpec) (*hypermine.DominatorResult, error)                   = (*hypermine.Engine).Dominator
	_ func(*hypermine.Engine, context.Context) (*hypermine.ABC, error)                                                        = (*hypermine.Engine).Classifier
	_ func(*hypermine.Engine, context.Context, hypermine.DominatorSpec) (*hypermine.ABC, error)                               = (*hypermine.Engine).ClassifierFor
	_ func(*hypermine.Engine, context.Context) ([]int, error)                                                                 = (*hypermine.Engine).Targets
	_ func(*hypermine.Engine, context.Context, int, hypermine.MineOptions) ([]hypermine.ScoredRule, error)                    = (*hypermine.Engine).Rules
	_ func(*hypermine.Engine, context.Context, []hypermine.Value, int) (hypermine.Value, float64, error)                      = (*hypermine.Engine).Predict
	_ func(*hypermine.Engine, context.Context, []hypermine.Value, int, []hypermine.Value, []float64) error                    = (*hypermine.Engine).PredictBatch
	_ func(*hypermine.Engine, context.Context, hypermine.EngineWarmup) error                                                  = (*hypermine.Engine).Warmup
	_ func(*hypermine.Engine) hypermine.EngineStats                                                                           = (*hypermine.Engine).Stats
	_ func(*hypermine.Engine) int64                                                                                           = (*hypermine.Engine).ResidentCost
	_ func(*hypermine.Engine) *hypermine.Model                                                                                = (*hypermine.Engine).Model
	_ func(*hypermine.ServedModel) *hypermine.Engine                                                                          = (*hypermine.ServedModel).Engine
	_ hypermine.EngineWarmup                                                                                                  = hypermine.EngineWarmupAll
	_ = hypermine.EngineWarmupNone | hypermine.EngineWarmupIndex | hypermine.EngineWarmupSimilarity |
		hypermine.EngineWarmupDominator | hypermine.EngineWarmupClassifier
)

// The request/response variants must stay plain comparable-field data
// (name-based, JSON-stable); DominatorSpec must stay usable as a map
// key.
var (
	_ = hypermine.DominatorSpec{} == hypermine.DominatorSpec{}
	_ = map[hypermine.DominatorSpec]bool{}
	_ = hypermine.EngineRequest{
		Rules:      &hypermine.RulesQuery{Head: "A", Top: 5, MinSupport: 0.1, MinConfidence: 0.2},
		Similar:    &hypermine.SimilarQuery{A: "A", B: "B", Top: 3},
		Dominators: &hypermine.DominatorsQuery{Alg: 6, Complete: true},
		Classify:   &hypermine.ClassifyQuery{Target: "A", Values: map[string]int{"B": 1}, Rows: [][]int{{1}}},
	}
)

// TestEngineMatchesV1OneShot runs a miniature consumer of the engine
// surface against the v1 free functions: the first engine answer must
// equal the one-shot answer, and Warmup + repeat queries must not
// change it. The exhaustive differentials live in internal/engine;
// this pin proves the *facade* wiring.
func TestEngineMatchesV1OneShot(t *testing.T) {
	gen := hypermine.DefaultGenConfig()
	gen.NumSeries = 12
	gen.NumDays = 200
	u, err := hypermine.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := hypermine.Build(tb, hypermine.C1())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := hypermine.NewEngine(model, hypermine.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := eng.Warmup(ctx, hypermine.EngineWarmupAll); err != nil {
		t.Fatal(err)
	}

	wantRules, err := hypermine.MineRules(model, 0, hypermine.MineOptions{MaxRules: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeats are cache reads, still identical
		gotRules, err := eng.Rules(ctx, 0, hypermine.MineOptions{MaxRules: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(gotRules) != len(wantRules) {
			t.Fatalf("engine rules %d != v1 rules %d", len(gotRules), len(wantRules))
		}
		for j := range gotRules {
			if gotRules[j].Support != wantRules[j].Support || gotRules[j].Confidence != wantRules[j].Confidence {
				t.Fatalf("rule %d drifted: %+v != %+v", j, gotRules[j], wantRules[j])
			}
		}
	}

	wantDom, err := hypermine.LeadingIndicators(model.H, nil, hypermine.DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotDom, err := eng.Dominator(ctx, hypermine.DefaultDominatorSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotDom.DomSet) != len(wantDom.DomSet) {
		t.Fatalf("engine dominator %v != v1 %v", gotDom.DomSet, wantDom.DomSet)
	}
	for i := range gotDom.DomSet {
		if gotDom.DomSet[i] != wantDom.DomSet[i] {
			t.Fatalf("engine dominator %v != v1 %v", gotDom.DomSet, wantDom.DomSet)
		}
	}

	wantSim, err := hypermine.BuildSimilarityGraph(model.H, nil)
	if err == nil {
		_ = wantSim // BuildSimilarityGraph rejects nil collections; tolerated either way
	}
	all := make([]int, model.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	wantSim, err = hypermine.BuildSimilarityGraph(model.H, all)
	if err != nil {
		t.Fatal(err)
	}
	gotSim, err := eng.SimilarityGraph(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		for j := range all {
			if gotSim.Dist(i, j) != wantSim.Dist(i, j) {
				t.Fatalf("similarity (%d,%d) drifted", i, j)
			}
		}
	}
}
