// Package apicompat is the v1 API-compatibility smoke: a small pinned
// consumer of the pre-context public surface, built against HEAD. The
// var block below spells out every v1 signature verbatim — if a
// refactor changes any of them (rather than layering the v2 Context
// forms alongside), this package stops compiling and CI fails before
// any caller does. The test then runs a miniature v1-only pipeline to
// prove the shims still behave, not just compile.
package apicompat

import (
	"bytes"
	"testing"

	hypermine "hypermine"
)

// Compile-time pins of the v1 function surface. Each entry is the
// exact signature shipped before the v2 context redesign; assignment
// fails to compile on any change.
var (
	_ func(*hypermine.Table, hypermine.Config) (*hypermine.Model, error)                                 = hypermine.Build
	_ func(*hypermine.Hypergraph, []int, hypermine.DominatorOptions) (*hypermine.DominatorResult, error) = hypermine.LeadingIndicators
	_ func(*hypermine.Hypergraph, []int) (*hypermine.SimilarityGraph, error)                             = hypermine.BuildSimilarityGraph
	_ func(*hypermine.Hypergraph, []int, int) (*hypermine.SimilarityGraph, error)                        = hypermine.BuildSimilarityGraphParallel
	_ func(*hypermine.Table, hypermine.AprioriOptions) ([]hypermine.FrequentItemset, error)              = hypermine.FrequentItemsets
	_ func([]hypermine.FrequentItemset, float64) ([]hypermine.ClassicRule, error)                        = hypermine.GenerateRules
	_ func(*hypermine.Table, hypermine.AprioriOptions, float64) ([]hypermine.ClassicRule, error)         = hypermine.MineClassicRules
	_ func(*hypermine.Model, int, hypermine.MineOptions) ([]hypermine.ScoredRule, error)                 = hypermine.MineRules
	_ func(*hypermine.Table, hypermine.Config, []int, []int, int) (float64, error)                       = hypermine.CrossValidateABC
	_ func(*hypermine.Model, []int, []int) (*hypermine.ABC, error)                                       = hypermine.NewClassifier
	_ func(*hypermine.Hypergraph, []int, hypermine.DominatorOptions) (*hypermine.DominatorResult, error) = hypermine.DominatorSetCover
	_ func(*hypermine.Hypergraph, []int, hypermine.DominatorOptions) (*hypermine.DominatorResult, error) = hypermine.DominatorGreedyDS
	_ func(*hypermine.Table, []int, int) (*hypermine.AssociationTable, error)                            = hypermine.BuildAssociationTable
	_ func(*hypermine.Table, []hypermine.Item) float64                                                   = hypermine.Support
	_ func(*hypermine.Table, hypermine.Rule) float64                                                     = hypermine.Confidence
	_ func(hypermine.RegistryOptions) *hypermine.ModelRegistry                                           = hypermine.NewModelRegistry
	_ func() hypermine.Config                                                                            = hypermine.C1
	_ func() hypermine.Config                                                                            = hypermine.C2
	_ func(hypermine.GenConfig) (*hypermine.Universe, error)                                             = hypermine.Generate
)

// The v1 option structs must stay comparable: callers legitimately
// write cfg == other (the persistence round-trip tests do). These
// lines fail to compile if a non-comparable field sneaks in.
var (
	_ = hypermine.C1() == hypermine.C2()
	_ = hypermine.DominatorOptions{} == hypermine.DominatorOptions{}
	_ = hypermine.AprioriOptions{} == hypermine.AprioriOptions{}
	_ = hypermine.MineOptions{} == hypermine.MineOptions{}
)

// TestV1PipelineStillWorks runs the whole v1 pipeline end to end
// through the shims: generate -> discretize -> build -> dominator ->
// classify -> rules -> apriori -> persistence.
func TestV1PipelineStillWorks(t *testing.T) {
	gen := hypermine.DefaultGenConfig()
	gen.NumSeries = 16
	gen.NumDays = 250
	u, err := hypermine.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := hypermine.Build(tb, hypermine.C1())
	if err != nil {
		t.Fatal(err)
	}
	dom, err := hypermine.LeadingIndicators(model.H, nil, hypermine.DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dom.DomSet) == 0 {
		t.Fatal("empty dominator")
	}
	inDom := map[int]bool{}
	for _, v := range dom.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range dom.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
	}
	if len(targets) > 0 {
		abc, err := hypermine.NewClassifier(model, dom.DomSet, targets)
		if err != nil {
			t.Fatal(err)
		}
		conf, err := abc.Evaluate(tb)
		if err != nil {
			t.Fatal(err)
		}
		if hypermine.MeanConfidence(conf) <= 0 {
			t.Fatal("zero classification confidence on training data")
		}
	}
	if _, err := hypermine.MineRules(model, 0, hypermine.MineOptions{MaxRules: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := hypermine.FrequentItemsets(tb, hypermine.AprioriOptions{MinSupport: 0.2, MaxLen: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hypermine.WriteModelSnapshot(&buf, model, hypermine.SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	back, err := hypermine.ReadModelSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.H.NumEdges() != model.H.NumEdges() {
		t.Fatalf("snapshot round trip lost edges: %d != %d", back.H.NumEdges(), model.H.NumEdges())
	}
	// The v1 Config of a round-tripped model compares equal with == —
	// the comparability contract exercised at runtime.
	if back.Config != model.Config {
		t.Fatal("round-tripped Config differs under ==")
	}
}
