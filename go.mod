module hypermine

go 1.24
