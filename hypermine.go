// Package hypermine is a Go implementation of "Mining Associations
// Using Directed Hypergraphs" (Simha & Tripathi, ICDE 2012 / USF
// thesis 2011): a directed-hypergraph model of association rules for
// multi-valued attributes, association-based similarity and
// clustering, leading-indicator (dominator) mining, and an
// association-based classifier.
//
// The package re-exports the library's public surface; implementation
// lives under internal/. The typical pipeline, in the context-aware
// v2 form (every long-running step honors cancellation/deadlines and
// can report progress):
//
//	ctx := context.Background() // or a request/signal-scoped context
//	u, _ := hypermine.Generate(hypermine.DefaultGenConfig()) // or your own data
//	tb, disc, _ := u.BuildTable(3)                           // equi-depth discretization
//	model, _ := hypermine.BuildContext(ctx, tb, hypermine.C1(),
//		hypermine.WithProgress(func(ph hypermine.Phase, done, total int) {
//			log.Printf("%s %d/%d", ph, done, total)
//		}))
//	dom, _ := hypermine.LeadingIndicatorsContext(ctx, model.H, nil, hypermine.DominatorOptions{})
//	abc, _ := hypermine.NewClassifier(model, dom.DomSet, targets)
//
// The v1 entry points (Build, LeadingIndicators, ...) remain as thin
// context.Background() shims and are bit-identical to the Context
// forms when the context is never canceled.
package hypermine

import (
	"context"

	"hypermine/internal/admit"
	"hypermine/internal/apriori"
	"hypermine/internal/classify"
	"hypermine/internal/cluster"
	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/engine"
	"hypermine/internal/fleet"
	"hypermine/internal/hypergraph"
	"hypermine/internal/registry"
	"hypermine/internal/runopt"
	"hypermine/internal/server"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
	"hypermine/internal/telemetry"
	"hypermine/internal/timeseries"
)

// Database substrate (internal/table).
type (
	// Table is the discrete database D(A, O, V).
	Table = table.Table
	// Value is an attribute value in 1..K.
	Value = table.Value
	// Discretizer maps raw real columns onto 1..K.
	Discretizer = table.Discretizer
	// EquiDepth is the paper's equi-depth k-threshold discretizer.
	EquiDepth = table.EquiDepth
	// EquiWidth is a fixed-range binning discretizer.
	EquiWidth = table.EquiWidth
)

// Re-exported table constructors.
var (
	NewTable          = table.New
	TableFromRows     = table.FromRows
	TableFromColumns  = table.FromColumns
	ReadTableCSV      = table.ReadCSV
	DiscretizeColumns = table.DiscretizeColumns
	DiscretizeMapped  = table.DiscretizeMapped
	ApplyThresholds   = table.ApplyThresholds
)

// Directed hypergraph substrate (internal/hypergraph).
type (
	// Hypergraph is a weighted directed hypergraph (Definition 2.9).
	Hypergraph = hypergraph.H
	// Hyperedge is one directed hyperedge (T, H).
	Hyperedge = hypergraph.Edge
	// HypergraphStats summarizes an edge population.
	HypergraphStats = hypergraph.Stats
)

// Re-exported hypergraph constructors.
var (
	NewHypergraph      = hypergraph.New
	ReadHypergraphJSON = hypergraph.ReadJSON
	// PackEdgeKey packs a restricted-model (tail, head) pair into its
	// canonical uint64 key — the allocation-free identity Lookup uses.
	PackEdgeKey = hypergraph.PackEdgeKey
)

// Core model (internal/core).
type (
	// Item is one (attribute, value) pair of an mva-type rule.
	Item = core.Item
	// Rule is an mva-type association rule (Definition 3.1).
	Rule = core.Rule
	// Config parameterizes association-hypergraph construction.
	Config = core.Config
	// Model is a mined association hypergraph plus its training table.
	Model = core.Model
	// AssociationTable is the AT of a directed hyperedge (Def. 3.6).
	AssociationTable = core.AssociationTable
)

// Re-exported rule/model functions.
var (
	// Support is Supp(X) of Definition 3.2(1).
	Support = core.Support
	// Confidence is Conf(X ==mva==> Y) of Definition 3.2(2).
	Confidence = core.Confidence
	// ACV computes the association confidence value of a combination.
	ACV = core.ACV
	// NullACV is ACV(empty, {head}) — the Theorem 3.8 baseline.
	NullACV = core.NullACV
	// BuildAssociationTable builds the AT of one combination.
	BuildAssociationTable = core.BuildAssociationTable
	// Build mines the association hypergraph of a table (§3.2.1).
	Build = core.Build
	// C1 and C2 are the paper's §5.1.2 configurations.
	C1 = core.C1
	C2 = core.C2
)

// Similarity and clustering (internal/similarity, internal/cluster).
type (
	// SimilarityGraph is SG_S of Definition 3.13.
	SimilarityGraph = similarity.Graph
	// Clustering is a t-clustering (Algorithm 2) result.
	Clustering = cluster.Clustering
	// KMeansResult is the k-means (Algorithm 4) baseline result.
	KMeansResult = cluster.KMeansResult
)

// Re-exported similarity/clustering functions.
var (
	// InSim and OutSim are the Definition 3.11 similarity notions.
	InSim  = similarity.InSim
	OutSim = similarity.OutSim
	// SimilarityDistance is 1 - (in-sim + out-sim)/2.
	SimilarityDistance = similarity.Distance
	// BuildSimilarityGraph induces SG_S over a vertex collection with
	// GOMAXPROCS workers; BuildSimilarityGraphParallel takes an
	// explicit worker count (1 = serial, bit-identical output).
	BuildSimilarityGraph         = similarity.BuildGraph
	BuildSimilarityGraphParallel = similarity.BuildGraphParallel
	// EuclideanSim is the §5.3.1 baseline similarity.
	EuclideanSim = similarity.EuclideanSim
	// TClustering is the Gonzalez 2-approximation (Algorithm 2).
	TClustering = cluster.TClustering
	// KMeans is the Algorithm 4 baseline.
	KMeans = cluster.KMeans
	// SectorPurity scores clusters against ground-truth labels.
	SectorPurity = cluster.SectorPurity
)

// Leading indicators (internal/cover).
type (
	// DominatorOptions tunes the greedy dominator algorithms.
	DominatorOptions = cover.Options
	// DominatorResult reports a computed dominator.
	DominatorResult = cover.Result
)

// Re-exported covering functions.
var (
	// SetCover is the greedy Algorithm 1; WeightedSetCover is the
	// minimum-cost generalization of §2.1.1.
	SetCover         = cover.SetCover
	WeightedSetCover = cover.WeightedSetCover
	CoverCost        = cover.CoverCost
	// DominatingSet solves graph dominating set via set cover.
	DominatingSet = cover.DominatingSet
	// DominatorGreedyDS is Algorithm 5.
	DominatorGreedyDS = cover.DominatorGreedyDS
	// DominatorSetCover is Algorithm 6 (+ Enhancements 1/2).
	DominatorSetCover = cover.DominatorSetCover
	// IsDominator checks Definition 4.1.
	IsDominator = cover.IsDominator
)

// Classification (internal/classify).
type (
	// ABC is the association-based classifier (Algorithm 9).
	ABC = classify.ABC
	// ABCPredictor is the scratch-reusing per-goroutine prediction
	// handle of an ABC: repeated Predict/PredictBatch calls through it
	// make zero heap allocations.
	ABCPredictor = classify.Predictor
	// Classifier is the baseline supervised-learning interface.
	Classifier = classify.Classifier
	// Perceptron, SVM, MLP, Logistic are the §5.5 baselines;
	// LinearRegression is the §2.3.1 preliminary.
	Perceptron       = classify.Perceptron
	SVM              = classify.SVM
	MLP              = classify.MLP
	Logistic         = classify.Logistic
	LinearRegression = classify.LinearRegression
	// DecisionTree is the CART-style tree of the Ordonez comparison.
	DecisionTree = classify.DecisionTree
)

// Re-exported classification functions.
var (
	// NewClassifier builds an association-based classifier from a
	// model, a dominator, and target attributes.
	NewClassifier = classify.NewABC
	// MeanConfidence averages per-target classification confidences.
	MeanConfidence = classify.MeanConfidence
	// OneHotFeatures and Labels prepare baseline training data.
	OneHotFeatures = classify.OneHotFeatures
	Labels         = classify.Labels
	// EvaluateBaseline fits and scores one baseline per target on
	// full observation rows; EvaluateBaselinePaperProtocol uses the
	// paper's exact §5.5 AT-row training protocol instead.
	EvaluateBaseline              = classify.EvaluateBaseline
	EvaluateBaselinePaperProtocol = classify.EvaluateBaselinePaperProtocol
	PaperProtocolData             = classify.PaperProtocolData
	// KFoldIndices and CrossValidateABC support contiguous-fold
	// cross-validation of the association-based classifier.
	KFoldIndices     = classify.KFoldIndices
	CrossValidateABC = classify.CrossValidateABC
)

// ExactMinDominator brute-forces a minimum dominator on small
// instances, for approximation-quality measurements.
var ExactMinDominator = cover.ExactMinDominator

// Classical association-rule mining baseline (internal/apriori) — the
// Agrawal/Srikant background the paper's model adapts (§1.1, §3.1).
type (
	// AprioriOptions controls frequent-itemset mining.
	AprioriOptions = apriori.Options
	// FrequentItemset is one frequent (attribute, value) itemset.
	FrequentItemset = apriori.Frequent
	// ClassicRule is a classical association rule X => Y.
	ClassicRule = apriori.Rule
)

// Re-exported Apriori functions.
var (
	// FrequentItemsets runs level-wise Apriori.
	FrequentItemsets = apriori.FrequentItemsets
	// GenerateRules derives rules from frequent itemsets.
	GenerateRules = apriori.GenerateRules
	// MineClassicRules is the one-call frequent+rules pipeline.
	MineClassicRules = apriori.Mine
)

// Model-level rule mining (internal/core).
type (
	// ScoredRule is an mva-type rule read off a model's hyperedge.
	ScoredRule = core.ScoredRule
	// MineOptions filters MineRules output.
	MineOptions = core.MineOptions
)

// Re-exported model rule mining.
var (
	// MineRules extracts ranked mva-type rules pointing at a head.
	MineRules = core.MineRules
	// FormatRule renders a rule with attribute names.
	FormatRule = core.FormatRule
	// ReadModelJSON loads a persisted model.
	ReadModelJSON = core.ReadModelJSON
)

// Model persistence (internal/core): the JSON codec plus the binary
// snapshot format shared by the CLI (`hypermine model save/load`) and
// the hypermined serving daemon.
type (
	// SaveOptions tunes model persistence; OmitRows drops the training
	// table for graph-query-only snapshots.
	SaveOptions = core.SaveOptions
)

var (
	// WriteModelSnapshot / ReadModelSnapshot are the binary snapshot
	// codec (magic "HYPM", versioned, length-prefixed, checksummed).
	WriteModelSnapshot = core.WriteSnapshot
	ReadModelSnapshot  = core.ReadSnapshot
)

// Model serving (internal/registry, internal/server): the hypermined
// subsystem — a hot-swappable registry of prepared models and the
// HTTP/JSON query API over it.
type (
	// ModelRegistry is a named registry of immutable served models
	// with atomic hot swap and LRU eviction by resident edge count.
	ModelRegistry = registry.Registry
	// RegistryOptions tunes a ModelRegistry.
	RegistryOptions = registry.Options
	// ServedModel is one fully prepared serving model (dominator,
	// classifier + predictor pool, cached similarity graph).
	ServedModel = registry.Served
	// RegistryStats is a point-in-time registry summary.
	RegistryStats = registry.Stats
	// QueryServer is the HTTP/JSON query API over a ModelRegistry.
	QueryServer = server.Server
)

var (
	// NewModelRegistry returns an empty model registry.
	NewModelRegistry = registry.New
	// NewQueryServer returns a QueryServer over a registry; mount
	// Handler() on any http server.
	NewQueryServer = server.New
)

// Admission control (internal/admit): graceful degradation under
// overload. An AdmissionController sits in front of every query with
// per-tenant and per-model token buckets, per-cost-class concurrency
// gates backed by bounded FIFO queues, and per-model circuit
// breakers. Hand one to NewQueryServer via WithAdmission; shed
// requests are answered immediately with 429 (rate/queue pressure) or
// 503 (open breaker) plus a Retry-After the client should honor. See
// the README's "Operating under load".
type (
	// AdmissionConfig tunes an AdmissionController. Zero or negative
	// limits disable the corresponding mechanism, so a zero config
	// admits everything.
	AdmissionConfig = admit.Config
	// AdmissionController is the admission front door shared by the
	// server, hypermined, and any custom transport.
	AdmissionController = admit.Controller
	// AdmissionStats is a point-in-time snapshot of admission
	// counters (admitted/queued/shed per tenant and model, gate loads,
	// breaker states).
	AdmissionStats = admit.Stats
	// QueryServerOption configures a QueryServer at construction.
	QueryServerOption = server.Option
)

var (
	// NewAdmissionController builds an admission controller.
	NewAdmissionController = admit.NewController
	// WithAdmission puts an admission controller in front of every
	// query a QueryServer serves.
	WithAdmission = server.WithAdmission
)

// Observability (internal/telemetry): the zero-dependency telemetry
// layer the server and daemon are wired through. A TelemetryRegistry
// holds named counters and fixed-bucket latency histograms and renders
// them as Prometheus text exposition; a Tracer mints (or adopts, via
// W3C traceparent) per-request trace IDs, records phase spans, and
// retains slow/errored/pinned/sampled traces in bounded lock-free
// rings served at /debug/traces. Hand a Tracer to NewQueryServer via
// WithTracer; see the README's "Observability".
type (
	// Tracer mints request traces and retains interesting ones.
	Tracer = telemetry.Tracer
	// TracerConfig tunes a Tracer (slow threshold, ring size,
	// sampling). The zero value is a working default.
	TracerConfig = telemetry.TracerConfig
	// TraceID is a 128-bit trace identifier (32 lowercase hex in JSON
	// and in the X-Trace-Id header).
	TraceID = telemetry.TraceID
	// Trace is one finished, retained request trace with its phase
	// spans; this is what /debug/traces serves.
	Trace = telemetry.Trace
	// TraceSpan is one phase span inside a Trace.
	TraceSpan = telemetry.SpanRecord
	// ActiveTrace is an in-flight trace being recorded; thread it
	// through work via ContextWithTrace.
	ActiveTrace = telemetry.Active
	// TelemetryRegistry holds counters and latency histograms and
	// writes Prometheus text exposition.
	TelemetryRegistry = telemetry.Registry
	// TelemetryCounter is one monotonically increasing counter shared
	// between /stats (JSON) and /metrics (Prometheus).
	TelemetryCounter = telemetry.Counter
	// LatencyHistogram is a fixed-bucket, allocation-free latency
	// histogram.
	LatencyHistogram = telemetry.Histogram
)

var (
	// NewTracer builds a Tracer from a TracerConfig.
	NewTracer = telemetry.NewTracer
	// NewTelemetryRegistry returns an empty telemetry registry.
	NewTelemetryRegistry = telemetry.NewRegistry
	// ParseTraceparent extracts the TraceID from a W3C traceparent
	// header value; ok reports whether the header was well-formed.
	ParseTraceparent = telemetry.ParseTraceparent
	// ContextWithTrace threads an in-flight trace through a context.
	ContextWithTrace = telemetry.ContextWithTrace
	// TraceFromContext returns the in-flight trace, or nil.
	TraceFromContext = telemetry.TraceFrom
	// TraceIDFromContext returns the current trace ID, or the zero ID.
	TraceIDFromContext = telemetry.TraceIDFrom
	// WithTracer wires request tracing into a QueryServer and exposes
	// /debug/traces.
	WithTracer = server.WithTracer
	// WithLogger sets the QueryServer's structured logger (slog).
	WithLogger = server.WithLogger
	// WithSlowQueryLog logs queries slower than the threshold as
	// structured warnings and pins their traces.
	WithSlowQueryLog = server.WithSlowQueryLog
)

// Fleet serving tier (internal/fleet): consistent-hash sharding of
// model names across replicated hypermined members. A FleetRing maps
// each model name to its R owners; a FleetNode wraps a QueryServer so
// accepted writes replicate synchronously to the other owners and
// generations gossip between members; a FleetRouter is the stateless
// routing tier that forwards model-scoped requests to owners with
// failover. See the README's "Fleet" section for the topology and the
// write-safety contract.
type (
	// FleetRing is the consistent-hash ring (virtual nodes, R owners
	// per model name, minimal movement on membership change).
	FleetRing = fleet.Ring
	// FleetNode is a fleet member: a QueryServer plus replication,
	// gossip, and readiness.
	FleetNode = fleet.Node
	// FleetNodeConfig configures a FleetNode (name, peers, R, vnodes,
	// gossip interval).
	FleetNodeConfig = fleet.NodeConfig
	// FleetRouter is the stateless routing/failover tier.
	FleetRouter = fleet.Router
	// FleetRouterConfig configures a FleetRouter (peers, R, vnodes,
	// optional admission + tracing).
	FleetRouterConfig = fleet.RouterConfig
)

var (
	// NewFleetRing builds a ring over a node set; 0 picks the
	// defaults (128 vnodes, R=2).
	NewFleetRing = fleet.NewRing
	// NewFleetNode wraps a registry + QueryServer into a fleet member.
	NewFleetNode = fleet.NewNode
	// NewFleetRouter builds the routing tier over a peer set.
	NewFleetRouter = fleet.NewRouter
)

// Prepared-model engine (internal/engine): the lazily-memoized query
// surface shared by this facade, the serving registry, the HTTP
// server, and the CLI. An Engine wraps one immutable Model and builds
// each derived artifact (TID-bitset index, all-pairs similarity
// graph, dominators keyed by options, prepared classifier + predictor
// pool, bounded LRU of mined-rule answers) at most once, on first
// use, sharing concurrent builds singleflight-style. The v1 free
// functions (MineRules, BuildSimilarityGraph, LeadingIndicators, ...)
// are the one-shot forms of the same computations and stay
// bit-identical: an Engine's first answer equals the v1 answer, and
// every repeat is a cache read.
type (
	// Engine is the prepared-model query handle.
	Engine = engine.Engine
	// EngineOptions tunes an Engine (rule-cache bound).
	EngineOptions = engine.Options
	// EngineStats reports artifact builds, rule-cache hits, and
	// resident-cost accounting.
	EngineStats = engine.Stats
	// EngineRequest / EngineResponse are the transport-neutral typed
	// query union executed by Engine.Do — the same types the server's
	// /v1/models/{name}:query endpoint decodes and encodes.
	EngineRequest  = engine.Request
	EngineResponse = engine.Response
	// EngineError is a typed engine failure (kind + message).
	EngineError = engine.Error
	// EngineWarmup selects artifacts for eager prebuilding.
	EngineWarmup = engine.Warmup
	// DominatorSpec keys a memoized dominator computation.
	DominatorSpec = engine.DomSpec
	// Typed request variants of EngineRequest.
	RulesQuery      = engine.RulesRequest
	SimilarQuery    = engine.SimilarRequest
	DominatorsQuery = engine.DominatorsRequest
	ClassifyQuery   = engine.ClassifyRequest
)

// Re-exported engine constructors and warmup policies.
var (
	// NewEngine wraps a model in a prepared query engine.
	NewEngine = engine.New
	// DefaultDominatorSpec is the serving dominator policy (Algorithm
	// 6 with both enhancements).
	DefaultDominatorSpec = engine.DefaultDomSpec
)

// Engine warmup policies (combine with |).
const (
	EngineWarmupNone       = engine.WarmupNone
	EngineWarmupIndex      = engine.WarmupIndex
	EngineWarmupSimilarity = engine.WarmupSimilarity
	EngineWarmupDominator  = engine.WarmupDominator
	EngineWarmupClassifier = engine.WarmupClassifier
	EngineWarmupAll        = engine.WarmupAll
)

// Financial time-series substrate (internal/timeseries).
type (
	// Series is one financial time-series with sector metadata.
	Series = timeseries.Series
	// Universe is an aligned collection of series.
	Universe = timeseries.Universe
	// GenConfig parameterizes the synthetic S&P-style generator.
	GenConfig = timeseries.GenConfig
	// Discretization carries fitted k-threshold vectors.
	Discretization = timeseries.Discretization
	// SectorSpec describes one sector of the synthetic taxonomy.
	SectorSpec = timeseries.SectorSpec
)

// Re-exported time-series functions.
var (
	// Delta computes fractional day-over-day changes (§5.1.1).
	Delta = timeseries.Delta
	// Generate builds a deterministic synthetic universe.
	Generate = timeseries.Generate
	// DefaultGenConfig / PaperScaleGenConfig are preset sizes.
	DefaultGenConfig    = timeseries.DefaultGenConfig
	PaperScaleGenConfig = timeseries.PaperScaleGenConfig
	// DefaultTaxonomy is the paper's 12-sector / 104-sub-sector map.
	DefaultTaxonomy = timeseries.DefaultTaxonomy
)

// DominatorVariant controls whether LeadingIndicators applies its
// paper-preferred enhancement defaults or respects the caller's
// explicit Enhancement1/2 settings; see the re-exported constants.
type DominatorVariant = cover.Variant

const (
	// DominatorAuto (the zero value) keeps the historical
	// LeadingIndicators behavior: Algorithm 6 with both enhancements,
	// regardless of the Enhancement fields.
	DominatorAuto = cover.VariantAuto
	// DominatorExplicit makes LeadingIndicators respect
	// Enhancement1/Enhancement2 exactly as the caller set them.
	DominatorExplicit = cover.VariantExplicit
)

// LeadingIndicators computes a leading indicator (dominator) for the
// given vertex set of h, defaulting to all vertices when s is nil.
//
// With opt.Variant == DominatorAuto (the zero value) it uses
// Algorithm 6 with both enhancements — the paper's preferred variant —
// overriding whatever Enhancement1/2 say; this default is deliberate
// and was historically applied silently. Set opt.Variant =
// DominatorExplicit to run exactly the enhancement combination you
// configured (cover.DominatorSetCover always did).
func LeadingIndicators(h *Hypergraph, s []int, opt DominatorOptions) (*DominatorResult, error) {
	return LeadingIndicatorsContext(context.Background(), h, s, opt)
}

// LeadingIndicatorsContext is LeadingIndicators under a context: the
// greedy cover polls ctx at a bounded candidate stride and returns
// ctx.Err() promptly when canceled. Options apply progress/stride
// hooks on top of opt.
func LeadingIndicatorsContext(ctx context.Context, h *Hypergraph, s []int, opt DominatorOptions, opts ...Option) (*DominatorResult, error) {
	if s == nil {
		s = make([]int, h.NumVertices())
		for i := range s {
			s[i] = i
		}
	}
	if opt.Variant == DominatorAuto {
		opt.Enhancement1 = true
		opt.Enhancement2 = true
	}
	o := gatherOptions(opts)
	opt.Run = o.mergeHooks(opt.Run)
	return cover.DominatorSetCoverContext(ctx, h, s, opt)
}

// Phase names one stage of the pipeline as seen by progress
// callbacks; the per-phase work units are documented on the
// runopt.Phase constants (PhaseEdges, PhasePairs, PhaseTriples,
// PhaseSimilarity, PhaseDominator, PhaseApriori, PhaseRules,
// PhaseFolds, re-exported below).
type Phase = runopt.Phase

// Re-exported pipeline phases.
const (
	PhaseEdges      = runopt.PhaseEdges
	PhasePairs      = runopt.PhasePairs
	PhaseTriples    = runopt.PhaseTriples
	PhaseSimilarity = runopt.PhaseSimilarity
	PhaseDominator  = runopt.PhaseDominator
	PhaseApriori    = runopt.PhaseApriori
	PhaseRules      = runopt.PhaseRules
	PhaseFolds      = runopt.PhaseFolds
)

// ProgressFunc observes completed work units of one phase; total is 0
// when unknown up front. Parallel stages may invoke it concurrently.
type ProgressFunc = runopt.ProgressFunc

// Option is a unified functional option accepted by every ...Context
// entry point of the facade. One vocabulary replaces the five
// divergent knobs of the underlying option structs: each Option maps
// onto the matching field of core.Config / cover.Options /
// apriori.Options / core.MineOptions / similarity.GraphOptions, and
// options without a counterpart for a given call (for example
// WithWorkers on the serial dominator) are simply ignored there.
type Option func(*callOptions)

type callOptions struct {
	workers int
	hooks   *runopt.Hooks
}

func gatherOptions(opts []Option) callOptions {
	var o callOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

func (o *callOptions) ensureHooks() *runopt.Hooks {
	if o.hooks == nil {
		o.hooks = &runopt.Hooks{}
	}
	return o.hooks
}

// mergeHooks layers the options' hooks over hooks the caller already
// attached to the option struct, mutating neither: an explicitly set
// WithProgress/WithDeadlineCheckEvery wins its field, every other
// field keeps the caller's value. Returns the existing pointer
// untouched when no hook options were given.
func (o *callOptions) mergeHooks(existing *runopt.Hooks) *runopt.Hooks {
	if o.hooks == nil {
		return existing
	}
	if existing == nil {
		return o.hooks
	}
	merged := *existing
	if o.hooks.Progress != nil {
		merged.Progress = o.hooks.Progress
	}
	if o.hooks.CheckEvery > 0 {
		merged.CheckEvery = o.hooks.CheckEvery
	}
	return &merged
}

// WithWorkers bounds worker goroutines for parallel operations
// (BuildContext, BuildSimilarityGraphContext, CrossValidateABCContext
// model builds); n <= 0 keeps the operation's default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(o *callOptions) { o.workers = n }
}

// WithProgress installs a progress callback; see ProgressFunc and the
// Phase constants for the reporting contract.
func WithProgress(f ProgressFunc) Option {
	return func(o *callOptions) { o.ensureHooks().Progress = f }
}

// WithDeadlineCheckEvery bounds how many work units an operation
// processes between context-cancellation polls, trading cancellation
// latency against (tiny) polling overhead. n <= 0 keeps each
// operation's documented default stride (core.DefaultCheckEvery ACV
// evaluations for builds, cover.DefaultCheckEvery candidates for
// dominators, apriori.DefaultCheckEvery candidates for Apriori, one
// edge/row for rules and similarity).
func WithDeadlineCheckEvery(n int) Option {
	return func(o *callOptions) { o.ensureHooks().CheckEvery = n }
}

// BuildContext is Build under a context: mining aborts promptly with
// ctx.Err() when ctx is canceled or its deadline passes, and is
// bit-identical to Build when it never is. Options map onto cfg
// (WithWorkers -> Parallelism, WithProgress/WithDeadlineCheckEvery ->
// Run hooks, merged field-wise over caller-set hooks) without
// mutating the caller's structs.
func BuildContext(ctx context.Context, tb *Table, cfg Config, opts ...Option) (*Model, error) {
	o := gatherOptions(opts)
	if o.workers > 0 {
		cfg.Parallelism = o.workers
	}
	cfg.Run = o.mergeHooks(cfg.Run)
	return core.BuildContext(ctx, tb, cfg)
}

// BuildSimilarityGraphContext is BuildSimilarityGraph under a
// context, with options for workers, progress, and poll stride.
func BuildSimilarityGraphContext(ctx context.Context, h *Hypergraph, s []int, opts ...Option) (*SimilarityGraph, error) {
	o := gatherOptions(opts)
	g := similarity.GraphOptions{Parallelism: o.workers}
	if o.hooks != nil {
		g.Progress = o.hooks.Progress
		g.CheckEvery = o.hooks.CheckEvery
	}
	return similarity.BuildGraphContext(ctx, h, s, g)
}

// FrequentItemsetsContext is FrequentItemsets under a context: the
// level-wise miner polls ctx between candidates and levels and
// returns ctx.Err() promptly when canceled.
func FrequentItemsetsContext(ctx context.Context, tb *Table, opt AprioriOptions, opts ...Option) ([]FrequentItemset, error) {
	o := gatherOptions(opts)
	opt.Run = o.mergeHooks(opt.Run)
	return apriori.FrequentItemsetsContext(ctx, tb, opt)
}

// MineRulesContext is MineRules under a context: mining polls ctx per
// hyperedge (each rebuilds one association table) and returns
// ctx.Err() promptly when canceled.
func MineRulesContext(ctx context.Context, m *Model, head int, opt MineOptions, opts ...Option) ([]ScoredRule, error) {
	o := gatherOptions(opts)
	opt.Run = o.mergeHooks(opt.Run)
	return core.MineRulesContext(ctx, m, head, opt)
}

// CrossValidateABCContext is CrossValidateABC under a context: the
// per-fold model builds inherit ctx and the options, and cancellation
// is additionally polled between folds.
func CrossValidateABCContext(ctx context.Context, tb *Table, cfg Config, dom, targets []int, k int, opts ...Option) (float64, error) {
	o := gatherOptions(opts)
	if o.workers > 0 {
		cfg.Parallelism = o.workers
	}
	cfg.Run = o.mergeHooks(cfg.Run)
	return classify.CrossValidateABCContext(ctx, tb, cfg, dom, targets, k)
}
