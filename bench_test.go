package hypermine

// One benchmark per table and figure of the paper's evaluation
// chapter (see DESIGN.md §4 for the experiment index), plus ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// The benchmarks run the same experiment code as cmd/experiments, at
// the reduced QuickParams size so `go test -bench=.` completes in
// minutes. Run cmd/experiments for paper-shaped output at full size.

import (
	"sync"
	"testing"

	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/experiments"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.QuickParams())
		if benchErr != nil {
			return
		}
		// Pre-build both configurations so individual benchmarks
		// measure the experiment, not the shared model build.
		if _, err := benchEnv.Built("C1"); err != nil {
			benchErr = err
			return
		}
		_, benchErr = benchEnv.Built("C2")
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkModelCounts regenerates the §5.1.2 headline counts.
func BenchmarkModelCounts(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunCounts(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Rows[0].DirectedEdges), "c1-edges")
		b.ReportMetric(float64(rep.Rows[0].TwoToOne), "c1-2to1")
	}
}

// BenchmarkFig51WeightedDegrees regenerates Figure 5.1.
func BenchmarkFig51WeightedDegrees(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig51(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable51TopEdges regenerates Table 5.1.
func BenchmarkTable51TopEdges(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable51(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable52HyperedgeVsEdges regenerates Table 5.2.
func BenchmarkTable52HyperedgeVsEdges(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable52(e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig52SimilarityScatter regenerates Figure 5.2.
func BenchmarkFig52SimilarityScatter(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFig52(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.InCV/rep.EuclidCV, "spread-ratio")
	}
}

// BenchmarkFig53Clusters regenerates Figure 5.3.
func BenchmarkFig53Clusters(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunFig53(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Purity, "purity")
	}
}

// BenchmarkTable53DominatorAlg5 regenerates Table 5.3.
func BenchmarkTable53DominatorAlg5(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTable53(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Rows[0].DominatorSize), "dom-size")
	}
}

// BenchmarkTable54DominatorAlg6 regenerates Table 5.4.
func BenchmarkTable54DominatorAlg6(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RunTable54(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Rows[0].DominatorSize), "dom-size")
	}
}

// BenchmarkFig54ConfidenceByYear regenerates Figure 5.4 (both panels).
func BenchmarkFig54ConfidenceByYear(b *testing.B) {
	e := benchEnvironment(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig54(e, experiments.Alg5, 120); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.RunFig54(e, experiments.Alg6, 120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAprioriBaselineMine runs the classical Apriori baseline
// (frequent itemsets + rules, via the public API) on the same C1
// experiment table the hypergraph benchmarks use — the end-to-end view
// of the TID-bitset counting engine.
func BenchmarkAprioriBaselineMine(b *testing.B) {
	e := benchEnvironment(b)
	built, err := e.Built("C1")
	if err != nil {
		b.Fatal(err)
	}
	tb := built.InTable
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules, err := MineClassicRules(tb, AprioriOptions{MinSupport: 0.2, MaxLen: 3}, 0.6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rules)), "rules")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

func benchBuild(b *testing.B, cfg core.Config) {
	e := benchEnvironment(b)
	built, err := e.Built("C1")
	if err != nil {
		b.Fatal(err)
	}
	tb := built.InTable
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Build(tb, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.H.NumEdges()), "edges")
	}
}

// BenchmarkAblationBuildAllPairs: exhaustive 2-to-1 candidate
// enumeration (the paper's §3.2.1 procedure).
func BenchmarkAblationBuildAllPairs(b *testing.B) {
	cfg := core.C1()
	cfg.Candidates = core.AllPairs
	benchBuild(b, cfg)
}

// BenchmarkAblationBuildEdgeSeeded: only evaluate tail pairs with an
// admitted constituent edge.
func BenchmarkAblationBuildEdgeSeeded(b *testing.B) {
	cfg := core.C1()
	cfg.Candidates = core.EdgeSeeded
	benchBuild(b, cfg)
}

// BenchmarkAblationBuildEdgesOnly: directed edges only (MaxTailSize 1).
func BenchmarkAblationBuildEdgesOnly(b *testing.B) {
	cfg := core.C1()
	cfg.MaxTailSize = 1
	benchBuild(b, cfg)
}

// BenchmarkAblationBuildGammaOff: gamma = 1 everywhere (no
// significance pruning) — measures how much Definition 3.7 shrinks the
// model.
func BenchmarkAblationBuildGammaOff(b *testing.B) {
	benchBuild(b, core.Config{K: 3, GammaEdge: 1.0, GammaPair: 1.0})
}

// BenchmarkAblationBuildSerial: single-threaded build, to quantify the
// parallel speedup of the default builder.
func BenchmarkAblationBuildSerial(b *testing.B) {
	cfg := core.C1()
	cfg.Parallelism = 1
	benchBuild(b, cfg)
}

func benchDominator(b *testing.B, opt cover.Options) {
	e := benchEnvironment(b)
	built, err := e.Built("C1")
	if err != nil {
		b.Fatal(err)
	}
	h := built.Model.H
	all := make([]int, h.NumVertices())
	for i := range all {
		all[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cover.DominatorSetCover(h, all, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.DomSet)), "dom-size")
	}
}

// BenchmarkAblationDominatorPlain: Algorithm 6 without enhancements.
func BenchmarkAblationDominatorPlain(b *testing.B) {
	benchDominator(b, cover.Options{})
}

// BenchmarkAblationDominatorEnhanced: Algorithm 6 with Enhancements 1
// and 2 (Algorithms 7/8).
func BenchmarkAblationDominatorEnhanced(b *testing.B) {
	benchDominator(b, cover.Options{Enhancement1: true, Enhancement2: true})
}

// BenchmarkAblationDominatorAlg5 measures Algorithm 5 on the same
// instance for a direct Alg5-vs-Alg6 comparison.
func BenchmarkAblationDominatorAlg5(b *testing.B) {
	e := benchEnvironment(b)
	built, err := e.Built("C1")
	if err != nil {
		b.Fatal(err)
	}
	h := built.Model.H
	all := make([]int, h.NumVertices())
	for i := range all {
		all[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cover.DominatorGreedyDS(h, all, cover.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.DomSet)), "dom-size")
	}
}
