package hypermine

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestPublicAPIPipeline exercises the whole facade end to end: data
// generation, discretization, model building, similarity, clustering,
// leading indicators, and classification.
func TestPublicAPIPipeline(t *testing.T) {
	gen := DefaultGenConfig()
	gen.NumSeries = 24
	gen.NumDays = 400
	u, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tb, disc, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if disc.K != 3 {
		t.Fatalf("disc K = %d", disc.K)
	}
	model, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}
	if model.H.NumEdges() == 0 {
		t.Fatal("no edges mined")
	}

	// Similarity + clustering.
	g, err := BuildSimilarityGraph(model.H, []int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := TClustering(6, 2, g.Dist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters() != 2 {
		t.Fatalf("clusters = %d", cl.NumClusters())
	}

	// Leading indicators.
	dom, err := LeadingIndicators(model.H, nil, DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dom.DomSet) == 0 || dom.CoverageFraction() <= 0 {
		t.Fatalf("dominator = %v coverage %v", dom.DomSet, dom.CoverageFraction())
	}
	if bad := IsDominator(model.H, coveredTargets(dom), dom.DomSet); len(bad) != 0 {
		t.Errorf("dominator violates Definition 4.1 for %v", bad)
	}

	// Classification over a few covered non-dominator targets.
	inDom := map[int]bool{}
	for _, v := range dom.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range dom.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
		if len(targets) == 4 {
			break
		}
	}
	if len(targets) == 0 {
		t.Skip("no coverable targets on this tiny universe")
	}
	abc, err := NewClassifier(model, dom.DomSet, targets)
	if err != nil {
		t.Fatal(err)
	}
	conf, err := abc.Evaluate(tb)
	if err != nil {
		t.Fatal(err)
	}
	mean := MeanConfidence(conf)
	if mean <= 1.0/3.0-0.05 {
		t.Errorf("ABC mean confidence %v not above chance", mean)
	}
}

func coveredTargets(dom *DominatorResult) []int {
	var out []int
	for v, cov := range dom.Covered {
		if cov {
			out = append(out, v)
		}
	}
	return out
}

// TestManualRuleAPI mirrors the paper's Example 3.3 through the facade.
func TestManualRuleAPI(t *testing.T) {
	tb, err := TableFromRows([]string{"A", "C", "B"}, 16, [][]Value{
		{2, 10, 13}, {6, 16, 16}, {3, 12, 13}, {1, 9, 10},
		{3, 12, 13}, {3, 12, 11}, {4, 13, 14}, {8, 12, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := []Item{{Attr: 0, Val: 3}, {Attr: 1, Val: 12}}
	if got := Support(tb, x); got != 0.375 {
		t.Errorf("Supp = %v", got)
	}
	conf := Confidence(tb, Rule{X: x, Y: []Item{{Attr: 2, Val: 13}}})
	if conf < 0.66 || conf > 0.67 {
		t.Errorf("Conf = %v", conf)
	}
	acv, err := ACV(tb, []int{0, 1}, 2)
	if err != nil || acv <= 0 || acv > 1 {
		t.Errorf("ACV = %v, %v", acv, err)
	}
	if n := NullACV(tb, 2); acv < n {
		t.Errorf("Theorem 3.8 violated: %v < %v", acv, n)
	}
}

// TestClassicMiningAPI exercises the Apriori baseline and the model
// rule-mining surface through the facade.
func TestClassicMiningAPI(t *testing.T) {
	tb, err := TableFromRows([]string{"milk", "diapers", "beer"}, 2, [][]Value{
		{2, 2, 2}, {2, 2, 1}, {2, 1, 2}, {1, 2, 2}, {2, 2, 2}, {2, 2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	freq, err := FrequentItemsets(tb, AprioriOptions{MinSupport: 0.5})
	if err != nil || len(freq) == 0 {
		t.Fatalf("FrequentItemsets: %d, %v", len(freq), err)
	}
	rules, err := GenerateRules(freq, 0.6)
	if err != nil || len(rules) == 0 {
		t.Fatalf("GenerateRules: %d, %v", len(rules), err)
	}
	all, err := MineClassicRules(tb, AprioriOptions{MinSupport: 0.5}, 0.6)
	if err != nil || len(all) != len(rules) {
		t.Fatalf("MineClassicRules: %d vs %d, %v", len(all), len(rules), err)
	}

	model, err := Build(tb, Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineRules(model, tb.AttrIndex("beer"), MineOptions{MaxRules: 3})
	if err != nil || len(mined) == 0 {
		t.Fatalf("MineRules: %d, %v", len(mined), err)
	}
	if s := FormatRule(tb, mined[0].Rule); s == "" {
		t.Error("FormatRule empty")
	}
}

// TestReachabilityAndExactDominatorAPI exercises ForwardClosure,
// Transpose, ExactMinDominator, and model persistence via the facade.
func TestReachabilityAndExactDominatorAPI(t *testing.T) {
	h, err := NewHypergraph([]string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	_ = h.AddEdge([]int{0}, []int{1}, 0.9)
	_ = h.AddEdge([]int{1, 2}, []int{3}, 0.9)
	det, err := h.ForwardClosure([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range []bool{true, true, true, true} {
		if det[v] != want {
			t.Errorf("closure[%d] = %v", v, det[v])
		}
	}
	if h.Transpose().NumEdges() != 2 {
		t.Error("Transpose lost edges")
	}
	dom, err := ExactMinDominator(h, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The only tails are {a} and {b,c}, so d is covered only by
	// putting both b and c in the dominator, and a (no incoming
	// edges) must self-cover: the optimum is {a, b, c}, size 3.
	if len(dom) != 3 {
		t.Errorf("exact dominator = %v", dom)
	}
}

// TestServingAPI exercises the serving facade: snapshot round trip,
// registry load + hot swap, and a classify query through the HTTP
// query server.
func TestServingAPI(t *testing.T) {
	gen := DefaultGenConfig()
	gen.NumSeries = 16
	gen.NumDays = 300
	u, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteModelSnapshot(&buf, model, SaveOptions{}); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadModelSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.H.NumEdges() != model.H.NumEdges() {
		t.Fatalf("snapshot round trip lost edges: %d -> %d", model.H.NumEdges(), loaded.H.NumEdges())
	}

	reg := NewModelRegistry(RegistryOptions{})
	if _, err := reg.Load("spx", loaded); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Load("spx", loaded) // hot swap with the same model
	if err != nil {
		t.Fatal(err)
	}
	if !info.Swapped {
		t.Fatal("reload did not swap")
	}

	ts := httptest.NewServer(NewQueryServer(reg).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/models/spx")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Classify  bool     `json:"classify"`
		Dominator []string `json:"dominator"`
		Targets   []string `json:"targets"`
		K         int      `json:"k"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !detail.Classify {
		t.Skip("fixture dominator covers no targets; classify smoke not applicable")
	}
	values := map[string]int{}
	for _, a := range detail.Dominator {
		values[a] = 1
	}
	body, _ := json.Marshal(map[string]any{"target": detail.Targets[0], "values": values})
	resp, err = http.Post(ts.URL+"/v1/models/spx/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cls struct {
		Value int `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cls); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || cls.Value < 1 || cls.Value > detail.K {
		t.Fatalf("classify: code %d value %d", resp.StatusCode, cls.Value)
	}
}
