package hypermine

import (
	"hypermine/internal/runopt"

	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// ctxFixture builds a small deterministic universe/table for the
// facade-level v2 API tests.
func ctxFixture(t *testing.T) *Table {
	t.Helper()
	gen := DefaultGenConfig()
	gen.NumSeries = 20
	gen.NumDays = 300
	u, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tb, _, err := u.BuildTable(3)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// TestFacadeContextFormsIdentical proves every facade ...Context
// entry point is bit-identical to its v1 form on a background
// context, with the unified options applied.
func TestFacadeContextFormsIdentical(t *testing.T) {
	tb := ctxFixture(t)
	ctx := context.Background()
	var mu sync.Mutex
	phases := map[Phase]int{}
	progress := func(ph Phase, done, total int) {
		mu.Lock()
		phases[ph]++
		mu.Unlock()
	}
	opts := []Option{WithWorkers(2), WithProgress(progress), WithDeadlineCheckEvery(1)}

	wantModel, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}
	gotModel, err := BuildContext(ctx, tb, C1(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if wantModel.H.NumEdges() != gotModel.H.NumEdges() || !reflect.DeepEqual(wantModel.EdgeACV, gotModel.EdgeACV) {
		t.Fatal("BuildContext differs from Build")
	}

	wantDom, err := LeadingIndicators(wantModel.H, nil, DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotDom, err := LeadingIndicatorsContext(ctx, gotModel.H, nil, DominatorOptions{}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantDom, gotDom) {
		t.Fatal("LeadingIndicatorsContext differs from LeadingIndicators")
	}

	all := make([]int, wantModel.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	wantSim, err := BuildSimilarityGraph(wantModel.H, all)
	if err != nil {
		t.Fatal(err)
	}
	gotSim, err := BuildSimilarityGraphContext(ctx, gotModel.H, all, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantSim, gotSim) {
		t.Fatal("BuildSimilarityGraphContext differs from BuildSimilarityGraph")
	}

	aOpt := AprioriOptions{MinSupport: 0.1, MaxLen: 3}
	wantFreq, err := FrequentItemsets(tb, aOpt)
	if err != nil {
		t.Fatal(err)
	}
	gotFreq, err := FrequentItemsetsContext(ctx, tb, aOpt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantFreq, gotFreq) {
		t.Fatal("FrequentItemsetsContext differs from FrequentItemsets")
	}

	head := 0
	for h := 0; h < tb.NumAttrs(); h++ {
		if len(wantModel.H.In(h)) > 0 {
			head = h
			break
		}
	}
	wantRules, err := MineRules(wantModel, head, MineOptions{MaxRules: 20})
	if err != nil {
		t.Fatal(err)
	}
	gotRules, err := MineRulesContext(ctx, gotModel, head, MineOptions{MaxRules: 20}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRules, gotRules) {
		t.Fatal("MineRulesContext differs from MineRules")
	}

	mu.Lock()
	defer mu.Unlock()
	for _, ph := range []Phase{PhaseEdges, PhasePairs, PhaseDominator, PhaseSimilarity, PhaseApriori, PhaseRules} {
		if phases[ph] == 0 {
			t.Errorf("WithProgress never observed phase %q", ph)
		}
	}
}

// TestFacadeCrossValidateContext covers the remaining facade entry
// point: CrossValidateABCContext against CrossValidateABC.
func TestFacadeCrossValidateContext(t *testing.T) {
	tb := ctxFixture(t)
	model, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}
	dom, err := LeadingIndicators(model.H, nil, DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inDom := map[int]bool{}
	for _, v := range dom.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range dom.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		t.Skip("fixture has no covered targets")
	}
	want, err := CrossValidateABC(tb, C1(), dom.DomSet, targets, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CrossValidateABCContext(context.Background(), tb, C1(), dom.DomSet, targets, 3, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if want != got {
		t.Fatalf("CrossValidateABCContext %v != CrossValidateABC %v", got, want)
	}
	// Canceled mid-fold via progress.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = CrossValidateABCContext(ctx, tb, C1(), dom.DomSet, targets, 3,
		WithProgress(func(ph Phase, done, total int) {
			if ph == PhaseFolds {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

// TestFacadeOptionsMergeCallerHooks pins the merge semantics: a
// facade Option overrides only its own field of caller-attached Run
// hooks, never clobbering the rest (the silent-overwrite class the
// Variant satellite fixes must not reappear here).
func TestFacadeOptionsMergeCallerHooks(t *testing.T) {
	tb := ctxFixture(t)
	called := 0
	cfg := C1()
	cfg.Run = &runopt.Hooks{Progress: func(Phase, int, int) { called++ }}
	// WithDeadlineCheckEvery must not drop the caller's Progress...
	if _, err := BuildContext(context.Background(), tb, cfg, WithDeadlineCheckEvery(4)); err != nil {
		t.Fatal(err)
	}
	if called == 0 {
		t.Fatal("WithDeadlineCheckEvery clobbered the caller's Progress hook")
	}
	// ...and must not mutate the caller's struct either.
	if cfg.Run.CheckEvery != 0 {
		t.Fatalf("caller's hooks mutated: CheckEvery = %d", cfg.Run.CheckEvery)
	}
}

// TestFacadeCancellation spot-checks that canceled contexts propagate
// out of the facade forms.
func TestFacadeCancellation(t *testing.T) {
	tb := ctxFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, tb, C1()); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildContext: want Canceled, got %v", err)
	}
	if _, err := FrequentItemsetsContext(ctx, tb, AprioriOptions{MinSupport: 0.1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("FrequentItemsetsContext: want Canceled, got %v", err)
	}
	model, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LeadingIndicatorsContext(ctx, model.H, nil, DominatorOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("LeadingIndicatorsContext: want Canceled, got %v", err)
	}
	if _, err := BuildSimilarityGraphContext(ctx, model.H, []int{0, 1, 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildSimilarityGraphContext: want Canceled, got %v", err)
	}
}

// TestLeadingIndicatorsVariant is the option-mutation satellite: the
// historical forced-enhancements default is now opt-in by Variant, and
// explicit settings are respected when asked for.
func TestLeadingIndicatorsVariant(t *testing.T) {
	tb := ctxFixture(t)
	model, err := Build(tb, C1())
	if err != nil {
		t.Fatal(err)
	}
	// DominatorAuto (zero value): identical to DominatorSetCover with
	// both enhancements on, regardless of the caller's flags.
	auto, err := LeadingIndicators(model.H, nil, DominatorOptions{Enhancement1: false, Enhancement2: false})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, model.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	enhanced, err := DominatorSetCover(model.H, all, DominatorOptions{Enhancement1: true, Enhancement2: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(auto, enhanced) {
		t.Fatal("DominatorAuto must force both enhancements on")
	}
	// DominatorExplicit: the caller's flags are honored verbatim.
	explicit, err := LeadingIndicators(model.H, nil, DominatorOptions{Variant: DominatorExplicit})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := DominatorSetCover(model.H, all, DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(explicit, plain) {
		t.Fatal("DominatorExplicit must respect the caller's Enhancement flags")
	}
	// On a mined fixture the two policies can coincide, which would
	// make the assertions above vacuous — so also prove the distinction
	// on a crafted graph where Enhancement 1's tie break provably
	// changes the pick order: tails {0,1} and {5} both score alpha 3 in
	// round one, and Enhancement 1 prefers {5} (one new member) while
	// the plain algorithm keeps the lexicographically first {0,1}.
	names := []string{"a", "b", "c", "d", "e", "f"}
	crafted, err := NewHypergraph(names)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		tail []int
		head int
	}{
		{[]int{0, 1}, 2},
		{[]int{5}, 3},
		{[]int{5}, 4},
	} {
		if err := crafted.AddEdge(e.tail, []int{e.head}, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	autoRes, err := LeadingIndicators(crafted, nil, DominatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	explicitRes, err := LeadingIndicators(crafted, nil, DominatorOptions{Variant: DominatorExplicit})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(autoRes.DomSet, explicitRes.DomSet) {
		t.Fatalf("crafted graph: Auto and Explicit must differ, both got %v", autoRes.DomSet)
	}
	if len(autoRes.DomSet) == 0 || autoRes.DomSet[0] != 5 {
		t.Fatalf("Enhancement 1 (Auto) should pick vertex f first, got %v", autoRes.DomSet)
	}
	if len(explicitRes.DomSet) == 0 || explicitRes.DomSet[0] != 0 {
		t.Fatalf("plain Algorithm 6 (Explicit, no enhancements) should pick {a,b} first, got %v", explicitRes.DomSet)
	}
}
