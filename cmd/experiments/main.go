// Command experiments regenerates every table and figure of the
// paper's evaluation chapter on the synthetic S&P-style universe.
//
// Usage:
//
//	experiments [-exp all|counts,fig5.1,table5.1,table5.2,fig5.2,fig5.3,table5.3,table5.4,fig5.4]
//	            [-series N] [-days N] [-seed N] [-quick] [-year N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hypermine/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		series   = flag.Int("series", 0, "override number of series (0 = default)")
		days     = flag.Int("days", 0, "override number of trading days (0 = default)")
		seed     = flag.Int64("seed", 0, "override generator seed (0 = default)")
		quick    = flag.Bool("quick", false, "use the reduced test-size configuration")
		yearDays = flag.Int("year", 250, "trading days per year for fig5.4")
		paper    = flag.Bool("paper-protocol", false, "also score SVM/logistic with the paper's §5.5 AT-row training protocol")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	if *quick {
		p = experiments.QuickParams()
	}
	if *series > 0 {
		p.Gen.NumSeries = *series
	}
	if *days > 0 {
		p.Gen.NumDays = *days
	}
	if *seed != 0 {
		p.Gen.Seed = *seed
	}
	p.PaperProtocol = *paper

	env, err := experiments.NewEnv(p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("universe: %d series x %d days (seed %d), split %.0f%% in-sample\n\n",
		len(env.U.Series), env.U.Days(), p.Gen.Seed, 100*p.SplitFrac)

	type runner struct {
		id  string
		run func() (renderer, error)
	}
	runners := []runner{
		{"counts", func() (renderer, error) { return experiments.RunCounts(env) }},
		{"fig5.1", func() (renderer, error) { return experiments.RunFig51(env) }},
		{"table5.1", func() (renderer, error) { return experiments.RunTable51(env) }},
		{"table5.2", func() (renderer, error) { return experiments.RunTable52(env) }},
		{"fig5.2", func() (renderer, error) { return experiments.RunFig52(env) }},
		{"fig5.3", func() (renderer, error) { return experiments.RunFig53(env) }},
		{"table5.3", func() (renderer, error) { return experiments.RunTable53(env) }},
		{"table5.4", func() (renderer, error) { return experiments.RunTable54(env) }},
		{"fig5.4", func() (renderer, error) { return experiments.RunFig54(env, experiments.Alg5, *yearDays) }},
		{"fig5.4b", func() (renderer, error) { return experiments.RunFig54(env, experiments.Alg6, *yearDays) }},
		{"ext3to1", func() (renderer, error) { return experiments.RunExt3to1(env) }},
		{"ablations", func() (renderer, error) { return experiments.RunAblations(env) }},
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	if want["fig5.4"] {
		want["fig5.4b"] = true
	}

	ran := 0
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		rep, err := r.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.id, err))
		}
		if err := rep.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s finished in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fatal(fmt.Errorf("no experiment matched %q", *expFlag))
	}
}

type renderer interface {
	Render(w io.Writer) error
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
