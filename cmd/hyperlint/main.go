// Command hyperlint is the repo's invariant multichecker: it runs the
// internal/analyzers suite (ctxpoll, noalloc, detout, locksafe,
// errkind) over Go packages and exits nonzero when any invariant is
// violated.
//
// Two modes:
//
//	hyperlint [patterns...]
//	    Standalone: load the packages matched by the patterns
//	    (default ./...) via the go command and check them. This is
//	    what CI runs.
//
//	go vet -vettool=$(which hyperlint) ./...
//	    Vet tool: hyperlint speaks the go vet unitchecker protocol
//	    (-V=full version handshake, then one .cfg file per package
//	    with pre-resolved export data), so it plugs into the
//	    toolchain's incremental vet driver.
//
// Exit status: 0 clean, 1 findings, 2 operational failure (load or
// typecheck error).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hypermine/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "-V") {
		// The go vet driver's version handshake: it keys its action
		// cache on a buildID= token, for which the tool's own binary
		// hash is the honest answer (new binary -> fresh vet results).
		h := sha256.New()
		if f, err := os.Open(os.Args[0]); err == nil {
			io.Copy(h, f)
			f.Close()
		}
		fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), string(h.Sum(nil)))
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// The driver asks which flags the tool accepts: none.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0]))
	}
	os.Exit(runStandalone(args))
}

func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	pkgs, err := analyzers.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	findings, err := analyzers.RunAnalyzers(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hyperlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the per-package configuration the go vet driver hands a
// -vettool (the unitchecker protocol's .cfg schema).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint: parsing", cfgPath, ":", err)
		return 2
	}
	// The driver requires a facts file for every package, dependencies
	// included; hyperlint keeps no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "hyperlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := loadVetPackage(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	findings, err := analyzers.RunAnalyzers([]*analyzers.Package{pkg}, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyperlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// loadVetPackage type-checks one vet unit from its cfg: sources are
// parsed from cfg.GoFiles and imports resolve through the export
// files the driver already built (cfg.PackageFile), after ImportMap
// canonicalization.
func loadVetPackage(cfg *vetConfig) (*analyzers.Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	return analyzers.TypecheckVetUnit(fset, cfg.ImportPath, cfg.Dir, files, cfg.ImportMap, cfg.PackageFile)
}
