// Command hypermined is the model-serving daemon: it loads binary
// model snapshots (written by `hypermine model save` or
// core.WriteSnapshot) into a hot-swappable registry and serves the
// HTTP/JSON query API of internal/server.
//
// Usage:
//
//	hypermined -addr :8080 -model demo=model.snap [-model other=o.snap] [-max-edges N] [-query-timeout 5s] [-warmup none|graph|all]
//
// Models can also be loaded (or hot-swapped) at runtime by PUTting a
// snapshot to /v1/models/{name}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hypermine/internal/core"
	"hypermine/internal/engine"
	"hypermine/internal/registry"
	"hypermine/internal/server"
)

// modelFlags collects repeatable -model name=path pairs.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, e := range *m {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var models modelFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int("max-edges", 0, "resident-cost bound for LRU eviction, in edge-equivalent units (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-query deadline; an expired query is abandoned with 504 (0 = unbounded; admin PUT/DELETE are exempt)")
	warmupFlag := flag.String("warmup", "none",
		"derived artifacts to prebuild at load: none (lazy, the default), graph (similarity+dominator), or all")
	flag.Var(&models, "model", "name=snapshot.snap to serve at boot (repeatable)")
	flag.Parse()

	warmup, err := engine.ParseWarmup(*warmupFlag)
	if err != nil {
		fatal(err)
	}
	reg := registry.New(registry.Options{MaxResidentEdges: *maxEdges, Warmup: warmup})
	for _, m := range models {
		if err := loadSnapshot(reg, m.name, m.path); err != nil {
			fatal(err)
		}
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: server.New(reg, server.WithQueryTimeout(*queryTimeout)).Handler(),
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("hypermined: serving %d model(s) on %s\n", len(reg.Names()), *addr)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		fmt.Println("hypermined: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fatal(err)
		}
	}
}

func loadSnapshot(reg *registry.Registry, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	m, err := core.ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	info, err := reg.Load(name, m)
	if err != nil {
		return err
	}
	fmt.Printf("hypermined: loaded %q gen %d (%d attrs, %d edges, %d rows) in %s\n",
		name, info.Generation, m.Table.NumAttrs(), m.H.NumEdges(), m.Table.NumRows(),
		time.Since(start).Round(time.Microsecond))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hypermined:", err)
	os.Exit(1)
}
