// Command hypermined is the model-serving daemon: it loads binary
// model snapshots (written by `hypermine model save` or
// core.WriteSnapshot) into a hot-swappable registry and serves the
// HTTP/JSON query API of internal/server.
//
// Usage:
//
//	hypermined -addr :8080 -model demo=model.snap [-model other=o.snap] [-max-edges N] [-query-timeout 5s] [-warmup none|graph|all]
//
// Models can also be loaded (or hot-swapped) at runtime by PUTting a
// snapshot to /v1/models/{name}.
//
// Overload protection (see the README's "Operating under load"):
// -tenant-rate/-tenant-burst and -model-rate/-model-burst configure
// token buckets (0 = unlimited), -gate-cheap/-queue-cheap and
// -gate-expensive/-queue-expensive bound concurrency per cost class
// (0 = ungated), and -breaker-failures/-breaker-cooldown configure the
// per-model circuit breaker (0 = no breaker). -slow-query logs queries
// over a threshold with per-phase attribution; -pprof exposes
// /debug/pprof. SIGINT/SIGTERM drain in-flight requests before exit.
//
// Observability (see the README's "Observability"): all daemon logs
// are structured slog lines (-log-format text|json); request tracing
// is on by default (-trace=false disables), echoing X-Trace-Id on
// every query, honoring inbound W3C traceparent headers, and retaining
// slow/errored/shed traces at GET /debug/traces. -trace-ring,
// -trace-sample, and -trace-slow tune retention; /metrics serves
// latency histograms per request kind and cost class.
//
// Fleet mode (see the README's "Fleet"): -mode serve with -node NAME
// and repeatable -peer name=url flags turns this process into a fleet
// member that owns a shard of the model-name space, synchronously
// replicates accepted writes to the other owners, and gossips
// generations every -gossip-interval; -mode router starts the
// stateless routing tier over the same -peer set instead. -replicas
// and -vnodes must agree across every member and router.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/core"
	"hypermine/internal/engine"
	"hypermine/internal/fleet"
	"hypermine/internal/registry"
	"hypermine/internal/server"
	"hypermine/internal/telemetry"
)

// peerFlags collects repeatable -peer name=url pairs.
type peerFlags map[string]string

func (p peerFlags) String() string {
	parts := make([]string, 0, len(p))
	for name, url := range p {
		parts = append(parts, name+"="+url)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p peerFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	p[name] = strings.TrimSuffix(url, "/")
	return nil
}

// modelFlags collects repeatable -model name=path pairs.
type modelFlags []struct{ name, path string }

func (m *modelFlags) String() string {
	parts := make([]string, len(*m))
	for i, e := range *m {
		parts[i] = e.name + "=" + e.path
	}
	return strings.Join(parts, ",")
}

func (m *modelFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var models modelFlags
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int("max-edges", 0, "resident-cost bound for LRU eviction, in edge-equivalent units (0 = unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-query deadline; an expired query is abandoned with 504 (0 = unbounded; admin PUT/DELETE are exempt)")
	warmupFlag := flag.String("warmup", "none",
		"derived artifacts to prebuild at load: none (lazy, the default), graph (similarity+dominator), or all")
	flag.Var(&models, "model", "name=snapshot.snap to serve at boot (repeatable)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant token-bucket rate in queries/sec (0 = unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "per-tenant token-bucket burst (defaults to the rate)")
	modelRate := flag.Float64("model-rate", 0, "per-model token-bucket rate in queries/sec (0 = unlimited)")
	modelBurst := flag.Float64("model-burst", 0, "per-model token-bucket burst (defaults to the rate)")
	gateCheap := flag.Int("gate-cheap", 0, "max concurrent cheap (warm-read) queries (0 = ungated)")
	queueCheap := flag.Int("queue-cheap", 0, "bounded FIFO wait queue behind the cheap gate; overflow is shed with 429")
	gateExpensive := flag.Int("gate-expensive", 0, "max concurrent expensive (mining) queries (0 = ungated)")
	queueExpensive := flag.Int("queue-expensive", 0, "bounded FIFO wait queue behind the expensive gate")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures that open a model's circuit breaker (0 = no breaker)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 5s default)")
	slowQuery := flag.Duration("slow-query", 0, "log queries slower than this, with per-phase attribution (0 = off)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof (off by default)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	traceOn := flag.Bool("trace", true, "request tracing: X-Trace-Id per query, W3C traceparent in, /debug/traces retention")
	traceRing := flag.Int("trace-ring", 0, "recent-trace ring size (0 = default 128)")
	traceSample := flag.Int("trace-sample", 0, "retain one in N unremarkable traces (0 = default 16, negative = only slow/errored)")
	traceSlow := flag.Duration("trace-slow", 0, "always retain traces at least this slow (0 = default 100ms)")
	mode := flag.String("mode", "serve", "process role: serve (a model-serving fleet member or standalone node) or router (stateless fleet routing tier)")
	nodeName := flag.String("node", "", "this node's fleet ring name (serve mode; empty = standalone, no fleet)")
	peers := peerFlags{}
	flag.Var(peers, "peer", "name=url of another fleet member (repeatable; both modes)")
	replicas := flag.Int("replicas", 0, "fleet replication factor R (0 = default 2; must agree fleet-wide)")
	vnodes := flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = default 128; must agree fleet-wide)")
	gossipInterval := flag.Duration("gossip-interval", time.Second, "period of the background generation-gossip loop (serve mode with peers)")
	maxForwardBody := flag.Int64("max-forward-body", 0, "router mode: max request body bytes buffered for failover replay (0 = default 64 MiB)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fatal(err)
	}
	slog.SetDefault(logger)

	if *mode != "serve" && *mode != "router" {
		fatal(fmt.Errorf("bad -mode %q (want serve or router)", *mode))
	}
	if *mode == "router" && (len(models) > 0 || *nodeName != "") {
		fatal(errors.New("-mode router takes -peer flags, not -model or -node"))
	}

	warmup, err := engine.ParseWarmup(*warmupFlag)
	if err != nil {
		fatal(err)
	}

	var ctl *admit.Controller
	if *tenantRate > 0 || *modelRate > 0 || *gateCheap > 0 || *gateExpensive > 0 || *breakerFailures > 0 {
		ctl = admit.NewController(admit.Config{
			TenantRate:        *tenantRate,
			TenantBurst:       burstOr(*tenantBurst, *tenantRate),
			ModelRate:         *modelRate,
			ModelBurst:        burstOr(*modelBurst, *modelRate),
			CheapCapacity:     *gateCheap,
			CheapQueue:        *queueCheap,
			ExpensiveCapacity: *gateExpensive,
			ExpensiveQueue:    *queueExpensive,
			BreakerFailures:   *breakerFailures,
			BreakerCooldown:   *breakerCooldown,
		})
	}

	regOpts := registry.Options{MaxResidentEdges: *maxEdges, Warmup: warmup, Logger: logger}
	if ctl != nil {
		// Feed the breaker from the load path: a model that cannot even
		// load trips open; a fresh successful load resets it.
		regOpts.LoadHook = ctl.RecordLoad
	}
	reg := registry.New(regOpts)
	for _, m := range models {
		if err := loadSnapshot(logger, reg, m.name, m.path); err != nil {
			fatal(err)
		}
	}

	var tracer *telemetry.Tracer
	if *traceOn {
		tracer = telemetry.NewTracer(telemetry.TracerConfig{
			Ring:          *traceRing,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
	}

	var handler http.Handler
	var fleetNode *fleet.Node
	switch {
	case *mode == "router":
		rt, err := fleet.NewRouter(fleet.RouterConfig{
			Peers:        peers,
			Replicas:     *replicas,
			VNodes:       *vnodes,
			Admission:    ctl,
			Tracer:       tracer,
			Logger:       logger,
			MaxBodyBytes: *maxForwardBody,
		})
		if err != nil {
			fatal(err)
		}
		handler = rt.Handler()
		logger.Info("hypermined: routing", "addr", *addr, "peers", len(peers),
			"ring", rt.Ring().String(), "admission", ctl != nil)
	case *nodeName != "":
		api := server.New(reg,
			server.WithQueryTimeout(*queryTimeout),
			server.WithAdmission(ctl),
			server.WithSlowQueryLog(*slowQuery),
			server.WithLogger(logger),
			server.WithTracer(tracer),
			server.WithPprof(*pprofOn),
		)
		node, err := fleet.NewNode(fleet.NodeConfig{
			Name:           *nodeName,
			Peers:          peers,
			Replicas:       *replicas,
			VNodes:         *vnodes,
			GossipInterval: *gossipInterval,
			Logger:         logger,
		}, reg, api)
		if err != nil {
			fatal(err)
		}
		node.Start()
		fleetNode = node
		handler = node.Handler()
		logger.Info("hypermined: fleet member serving", "node", *nodeName, "addr", *addr,
			"peers", len(peers), "ring", node.Ring().String(), "models", len(reg.Names()))
	default:
		if len(peers) > 0 {
			fatal(errors.New("-peer requires -node NAME (fleet member) or -mode router"))
		}
		handler = server.New(reg,
			server.WithQueryTimeout(*queryTimeout),
			server.WithAdmission(ctl),
			server.WithSlowQueryLog(*slowQuery),
			server.WithLogger(logger),
			server.WithTracer(tracer),
			server.WithPprof(*pprofOn),
		).Handler()
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("hypermined: serving", "models", len(reg.Names()), "addr", *addr,
			"tracing", *traceOn, "admission", ctl != nil, "mode", *mode)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		logger.Info("hypermined: shutting down")
		if fleetNode != nil {
			fleetNode.Stop()
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				logger.Warn("hypermined: drain deadline expired, exiting with requests in flight")
				return
			}
			fatal(err)
		}
		logger.Info("hypermined: drained, bye")
	}
}

// newLogger builds the daemon's structured logger on stderr.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
}

func loadSnapshot(logger *slog.Logger, reg *registry.Registry, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	start := time.Now()
	m, err := core.ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	info, err := reg.Load(name, m)
	if err != nil {
		return err
	}
	logger.Info("hypermined: loaded model",
		"model", name, "generation", info.Generation,
		"attrs", m.Table.NumAttrs(), "edges", m.H.NumEdges(), "rows", m.Table.NumRows(),
		"duration", time.Since(start).Round(time.Microsecond))
	return nil
}

// burstOr defaults an unset burst to the bucket's rate, so one full
// second of traffic fits before shedding starts.
func burstOr(burst, rate float64) float64 {
	if burst > 0 {
		return burst
	}
	return rate
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hypermined:", err)
	os.Exit(1)
}
