// Command genspx emits the synthetic S&P-style dataset: a prices CSV
// (ticker metadata + daily closes) and, optionally, the discretized
// database CSV ready for the miner.
//
// Usage:
//
//	genspx [-series N] [-days N] [-seed N] [-k K]
//	       [-prices prices.csv] [-table table.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"hypermine/internal/timeseries"
)

func main() {
	var (
		series    = flag.Int("series", 120, "number of series")
		days      = flag.Int("days", 2200, "number of trading days")
		seed      = flag.Int64("seed", 42, "generator seed")
		k         = flag.Int("k", 3, "discretization cardinality for -table")
		pricesOut = flag.String("prices", "prices.csv", "prices CSV path ('' to skip)")
		tableOut  = flag.String("table", "", "discretized table CSV path ('' to skip)")
	)
	flag.Parse()

	cfg := timeseries.DefaultGenConfig()
	cfg.NumSeries = *series
	cfg.NumDays = *days
	cfg.Seed = *seed
	u, err := timeseries.Generate(cfg)
	if err != nil {
		fatal(err)
	}

	if *pricesOut != "" {
		f, err := os.Create(*pricesOut)
		if err != nil {
			fatal(err)
		}
		if err := u.WritePricesCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d series x %d days to %s\n", len(u.Series), u.Days(), *pricesOut)
	}
	if *tableOut != "" {
		tb, _, err := u.BuildTable(*k)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*tableOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := tb.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %dx%d discretized table (k=%d) to %s\n",
			tb.NumRows(), tb.NumAttrs(), *k, *tableOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genspx:", err)
	os.Exit(1)
}
