// Command hypermine is the CLI for the association-hypergraph miner.
// All logic lives in internal/cli (testable); this wrapper only wires
// stdout/stderr and the exit code. Run `hypermine help` for usage.
package main

import (
	"errors"
	"fmt"
	"os"

	"hypermine/internal/cli"
)

func main() {
	app := cli.New(os.Stdout)
	if err := app.Run(os.Args[1:]); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "hypermine:", err)
		os.Exit(1)
	}
}
