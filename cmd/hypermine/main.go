// Command hypermine is the CLI for the association-hypergraph miner.
// All logic lives in internal/cli (testable); this wrapper wires
// stdout/stderr, the exit code, and SIGINT/SIGTERM-driven graceful
// cancellation: ^C cancels the run context, long-running subcommands
// return promptly, and the process exits 130 (the conventional
// fatal-SIGINT code). Run `hypermine help` for usage.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"hypermine/internal/cli"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	app := cli.New(os.Stdout)
	if err := app.RunContext(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hypermine: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "hypermine:", err)
		os.Exit(1)
	}
}
