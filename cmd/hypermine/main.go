// Command hypermine is the CLI for the association-hypergraph miner.
// All logic lives in internal/cli (testable); this wrapper wires
// stdout/stderr, the exit code, and SIGINT/SIGTERM-driven graceful
// cancellation: ^C cancels the run context, long-running subcommands
// return promptly, and the process exits 130 (the conventional
// fatal-SIGINT code). Run `hypermine help` for usage.
//
// Program output (tables, rules, JSON) goes to stdout; diagnostics go
// to stderr as structured slog lines (text by default, JSON with
// HYPERMINE_LOG_FORMAT=json — an env var, not a flag, because every
// subcommand owns its own flag set). Usage errors stay plain text:
// they are help output for a human mid-typo, not log events.
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"hypermine/internal/cli"
)

func main() {
	logger := newLogger(os.Getenv("HYPERMINE_LOG_FORMAT"))
	slog.SetDefault(logger)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	app := cli.New(os.Stdout)
	if err := app.RunContext(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, cli.ErrUsage) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if errors.Is(err, context.Canceled) {
			logger.Warn("hypermine: interrupted")
			os.Exit(130)
		}
		logger.Error("hypermine: command failed", "error", err)
		os.Exit(1)
	}
}

// newLogger builds the CLI's structured diagnostic logger on stderr.
// An unknown format falls back to text rather than failing: the
// variable must never make the tool unusable.
func newLogger(format string) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
