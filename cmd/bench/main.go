// Command bench measures the repo's machine-readable BENCH_* perf
// trajectory. Two suites:
//
//   - pr2: the PR-2 query-stack benchmarks — packed-key lookups,
//     allocation-free similarity, scratch-reusing classification, and
//     the parallel BuildGraph/Evaluate paths — against in-process
//     reconstructions of the legacy implementations (-> BENCH_2.json).
//   - ctx (default): the PR-4 context-plumbing overhead — Build,
//     Apriori, rule mining, and batch classification with cancellation
//     polling at the default stride under a real (cancellable) context
//     versus the check-free paths, proving the v2 API's ctx checks
//     cost under the 2% acceptance bar (-> BENCH_4.json).
//   - engine: the PR-5 prepared-model engine — cold-vs-warm repeat
//     query latency for rules and similarity ranking (the memoization
//     effect, measurable on a single core) against the
//     recompute-per-call v1 paths, plus the zero-allocation warm
//     classify path (-> BENCH_5.json). The suite exits nonzero if the
//     acceptance bars (warm >= 10x, classify allocs == 0) fail.
//   - admit: the PR-7 admission-control overhead — the full warm
//     classify handler (mux + decode + admission + engine + encode)
//     with every admission mechanism active (breaker, two buckets,
//     gate) versus the same server without admission, plus the raw
//     Admit/Done ticket cost (-> BENCH_7.json). The suite exits
//     nonzero if admission costs >= 2% on the warm classify path.
//   - telemetry: the PR-8 observability overhead — the warm classify
//     handler with cold-sampled request tracing versus the same server
//     without tracing, plus the raw telemetry primitives (histogram
//     Observe, full unretained trace cycle, traceparent parse, context
//     trace-ID fetch) measured to nanosecond precision
//     (-> BENCH_8.json). The suite exits nonzero if the per-request
//     telemetry transaction costs >= 2% of the warm classify handler
//     or any hot-path primitive allocates.
//   - delta: the PR-9 incremental mining subsystem — steady-state
//     delta appends at 1/10/100 rows against the full re-mine they
//     replace, the one-time count-seeding cost of the first append,
//     and the end-to-end registry append-republish against full
//     Build-plus-reload (-> BENCH_9.json). The suite exits nonzero
//     if the incremental path is not faster at small deltas.
//   - fleet: the PR-10 sharded serving tier — a warm classify routed
//     through the fleet router versus querying the owning replica
//     directly (forwarding overhead), and a snapshot PUT with
//     synchronous replication to the replica set versus the same PUT
//     on a standalone server, across snapshot sizes
//     (-> BENCH_10.json). The suite exits nonzero if forwarding adds
//     >= 2ms on loopback.
//
// Usage:
//
//	go run ./cmd/bench [-suite ctx|pr2|engine|admit|telemetry|delta|fleet] [-out FILE.json] [-quick]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/apriori"
	"hypermine/internal/benchfix"
	"hypermine/internal/core"
	"hypermine/internal/cover"
	"hypermine/internal/delta"
	"hypermine/internal/engine"
	"hypermine/internal/fleet/sim"
	"hypermine/internal/hypergraph"
	"hypermine/internal/registry"
	"hypermine/internal/runopt"
	"hypermine/internal/server"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
	"hypermine/internal/telemetry"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type comparison struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
	// OverheadPct is set by the ctx suite: how much slower the
	// "optimized" (ctx-checked) form is than the baseline, in percent.
	// Negative values are measurement noise around zero.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

type report struct {
	PR          int           `json:"pr"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	GoVersion   string        `json:"go_version"`
	Note        string        `json:"note"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Comparisons []comparison  `json:"comparisons"`
}

func run(name string, rep *report, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	res := benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Benchmarks = append(rep.Benchmarks, res)
	fmt.Printf("%-42s %12.1f ns/op %8d B/op %6d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func compare(rep *report, name string, base, opt benchResult) {
	sp := base.NsPerOp / opt.NsPerOp
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name: name, Baseline: base.Name, Optimized: opt.Name,
		Speedup: math.Round(sp*100) / 100,
	})
	fmt.Printf("  -> %s: %.2fx\n", name, sp)
}

// runPair measures a baseline/ctx pair with interleaved rounds,
// keeping each side's best (minimum ns/op) — the standard
// noise-robust estimator. On a single-core host, run-to-run variance
// of a one-shot testing.Benchmark is several percent, larger than the
// overhead being measured; interleaving and taking minima pushes the
// noise floor well below the 2% acceptance bar.
func runPair(rep *report, baseName string, baseFn func(b *testing.B), ctxName string, ctxFn func(b *testing.B)) (base, ctxRes benchResult) {
	const rounds = 3
	best := func(cur, cand benchResult) benchResult {
		if cur.Name == "" || cand.NsPerOp < cur.NsPerOp {
			return cand
		}
		return cur
	}
	measure := func(name string, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(fn)
		return benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	for i := 0; i < rounds; i++ {
		base = best(base, measure(baseName, baseFn))
		ctxRes = best(ctxRes, measure(ctxName, ctxFn))
	}
	for _, res := range []benchResult{base, ctxRes} {
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-42s %12.1f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	}
	return base, ctxRes
}

// compareOverhead records how much slower the ctx-checked form is
// than its check-free baseline, in percent.
func compareOverhead(rep *report, name string, base, ctxForm benchResult) {
	over := (ctxForm.NsPerOp/base.NsPerOp - 1) * 100
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name: name, Baseline: base.Name, Optimized: ctxForm.Name,
		Speedup:     math.Round(base.NsPerOp/ctxForm.NsPerOp*10000) / 10000,
		OverheadPct: math.Round(over*100) / 100,
	})
	fmt.Printf("  -> %s: %+.2f%% overhead\n", name, over)
}

// legacyKeys rebuilds the pre-PR-2 string edge index of h.
func legacyKeys(h *hypergraph.H) map[string]int32 {
	m := make(map[string]int32, h.NumEdges())
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(i)
		m[hypergraph.EdgeKey(e.Tail, e.Head)] = int32(i)
	}
	return m
}

// legacyReplaceTail is the pre-PR-2 allocating substitution.
func legacyReplaceTail(tail []int, a1, a2 int) ([]int, bool) {
	out := make([]int, 0, len(tail))
	for _, v := range tail {
		if v == a1 {
			v = a2
		} else if v == a2 {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// legacyOutSim reproduces the pre-PR-2 OutSim read path: allocating
// substitution plus string-keyed lookups.
func legacyOutSim(h *hypergraph.H, keys map[string]int32, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.Out(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	for _, i := range h.Out(a1) {
		e := h.Edge(int(i))
		sub, ok := legacyReplaceTail(e.Tail, a1, a2)
		if ok {
			if j, found := keys[hypergraph.EdgeKey(sub, e.Head)]; found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.Out(a2) {
		f := h.Edge(int(i))
		sub, ok := legacyReplaceTail(f.Tail, a2, a1)
		if ok {
			if _, found := keys[hypergraph.EdgeKey(sub, f.Head)]; found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// legacyInSim reproduces the pre-PR-2 InSim read path.
func legacyInSim(h *hypergraph.H, keys map[string]int32, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.In(a1)) > 0 {
			return 1
		}
		return 0
	}
	contains := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	var num, den float64
	for _, i := range h.In(a1) {
		e := h.Edge(int(i))
		sub, ok := legacyReplaceTail(e.Head, a1, a2)
		if ok && !contains(e.Tail, a2) {
			if j, found := keys[hypergraph.EdgeKey(e.Tail, sub)]; found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.In(a2) {
		f := h.Edge(int(i))
		sub, ok := legacyReplaceTail(f.Head, a2, a1)
		if ok && !contains(f.Tail, a1) {
			if _, found := keys[hypergraph.EdgeKey(f.Tail, sub)]; found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func main() {
	suite := flag.String("suite", "ctx", "benchmark suite: ctx (PR-4 context overhead), pr2 (query stack), engine (PR-5 prepared-model engine), admit (PR-7 admission overhead), telemetry (PR-8 observability overhead), delta (PR-9 incremental mining), or fleet (PR-10 router forwarding + replication)")
	out := flag.String("out", "", "output JSON path ('' = suite default, '-' for stdout only)")
	quick := flag.Bool("quick", false, "shrink workloads for CI smoke runs")
	flag.Parse()

	var rep *report
	switch *suite {
	case "pr2":
		if *out == "" {
			*out = "BENCH_2.json"
		}
		rep = suitePR2(*quick)
	case "ctx":
		if *out == "" {
			*out = "BENCH_4.json"
		}
		rep = suiteCtx(*quick)
	case "engine":
		if *out == "" {
			*out = "BENCH_5.json"
		}
		rep = suiteEngine(*quick)
	case "admit":
		if *out == "" {
			*out = "BENCH_7.json"
		}
		rep = suiteAdmit(*quick)
	case "telemetry":
		if *out == "" {
			*out = "BENCH_8.json"
		}
		rep = suiteTelemetry(*quick)
	case "delta":
		if *out == "" {
			*out = "BENCH_9.json"
		}
		rep = suiteDelta(*quick)
	case "fleet":
		if *out == "" {
			*out = "BENCH_10.json"
		}
		rep = suiteFleet(*quick)
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q (want ctx, pr2, engine, admit, telemetry, delta, or fleet)\n", *suite)
		os.Exit(2)
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	js = append(js, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(js)
	}
}

// suiteCtx measures the cost of the v2 API's cancellation polling on
// the hot paths, under a real cancellable context (so ctx.Err() takes
// the non-trivial path) at the documented default strides.
func suiteCtx(quick bool) *report {
	attrs, rows := 30, 20000
	batchRows := 4096
	if quick {
		attrs, rows = 12, 1500
		batchRows = 512
	}
	rep := &report{
		PR:         4,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "context-plumbing overhead: each pair runs the identical workload " +
			"through the v2 code with cancellation polling disabled (stride 2^30) " +
			"vs the default stride under a live context.WithCancel context, 3 " +
			"interleaved rounds keeping each side's best run to suppress " +
			"single-core scheduling noise. overhead_pct isolates the polling " +
			"cost (the acceptance metric; PR-4 bar < 2% on Build/classify); " +
			"structural parity of the v2 refactor against the pre-PR-4 binary " +
			"is established by the verify drive's differential (bit-identical " +
			"build output, comparable wall time), not by this suite.",
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	m := benchfix.ModelWorkload(attrs, rows)
	tb := m.Table
	cfg := core.Config{GammaEdge: 1.0, GammaPair: 1.0}

	// Build: stride 1<<30 never polls inside a run, isolating the cost
	// of the polling itself from the default stride under a cancellable
	// context. Both sides run the v2 machinery (select-based feeders,
	// per-unit stride counters); structural parity with the pre-v2
	// builder is checked separately by the verify drive's binary
	// differential (bit-identical output, comparable wall time), not
	// by this suite.
	cfgOff := cfg
	cfgOff.Run = &runopt.Hooks{CheckEvery: 1 << 30}
	buildOff, buildOn := runPair(rep,
		"Build/no-ctx-polling", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildContext(ctx, tb, cfgOff); err != nil {
					b.Fatal(err)
				}
			}
		},
		"Build/ctx-default-stride", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildContext(ctx, tb, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	compareOverhead(rep, "Build ctx checks", buildOff, buildOn)

	// Batch classification: the v1 check-free loop vs the ctx loop.
	abc, _ := benchfix.ABCWorkload(attrs, rows)
	p := abc.NewPredictor()
	dom := abc.Dominator()
	domVals := make([]table.Value, batchRows*len(dom))
	for i := range domVals {
		domVals[i] = table.Value(1 + i%3)
	}
	outV := make([]table.Value, batchRows)
	conf := make([]float64, batchRows)
	target := abc.Targets()[0]
	batchOff, batchOn := runPair(rep,
		"PredictBatch/v1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.PredictBatch(domVals, target, outV, conf); err != nil {
					b.Fatal(err)
				}
			}
		},
		"PredictBatch/ctx", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := p.PredictBatchContext(ctx, domVals, target, outV, conf); err != nil {
					b.Fatal(err)
				}
			}
		})
	compareOverhead(rep, "PredictBatch ctx checks", batchOff, batchOn)

	// Apriori: default stride vs never-poll.
	aOff := apriori.Options{MinSupport: 0.05, MaxLen: 3, Run: &runopt.Hooks{CheckEvery: 1 << 30}}
	aOn := apriori.Options{MinSupport: 0.05, MaxLen: 3}
	aprioriOff, aprioriOn := runPair(rep,
		"FrequentItemsets/no-ctx-polling", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apriori.FrequentItemsetsContext(ctx, tb, aOff); err != nil {
					b.Fatal(err)
				}
			}
		},
		"FrequentItemsets/ctx-default-stride", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apriori.FrequentItemsetsContext(ctx, tb, aOn); err != nil {
					b.Fatal(err)
				}
			}
		})
	compareOverhead(rep, "FrequentItemsets ctx checks", aprioriOff, aprioriOn)

	// Rule mining (the serving-path heavy query).
	head := 0
	for h := 0; h < tb.NumAttrs(); h++ {
		if len(m.H.In(h)) > len(m.H.In(head)) {
			head = h
		}
	}
	rulesOptOff := core.MineOptions{MaxRules: 10, Run: &runopt.Hooks{CheckEvery: 1 << 30}}
	rulesOff, rulesOn := runPair(rep,
		"MineRules/no-ctx-polling", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MineRulesContext(ctx, m, head, rulesOptOff); err != nil {
					b.Fatal(err)
				}
			}
		},
		"MineRules/ctx-per-edge", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MineRulesContext(ctx, m, head, core.MineOptions{MaxRules: 10}); err != nil {
					b.Fatal(err)
				}
			}
		})
	compareOverhead(rep, "MineRules ctx checks", rulesOff, rulesOn)

	return rep
}

// suiteEngine measures the prepared-model engine's memoization effect:
// warm repeat queries against the recompute-per-call v1 paths, cold
// first queries (which pay the build), and the zero-allocation warm
// classify path. These are exactly the acceptance metrics of the
// engine redesign, so the suite enforces them: warm rules and warm
// similarity rankings must be >= 10x faster than their v1
// recompute-per-call counterparts and the warm classify path must not
// allocate; a miss exits nonzero.
func suiteEngine(quick bool) *report {
	attrs, rows := 30, 20000
	if quick {
		attrs, rows = 12, 1500
	}
	rep := &report{
		PR:         5,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "prepared-model engine: cold entries include the engine's first-query " +
			"artifact build (rule mining, all-pairs similarity graph); warm entries " +
			"are repeat queries against the memoized artifacts. v1 baselines " +
			"recompute per call exactly as the pre-engine free functions did. " +
			"Single-core host: the caching effect is wall-clock measurable here; " +
			"concurrency correctness (one build per artifact under racing queries) " +
			"is proven by the race-enabled internal/engine tests.",
	}
	ctx := context.Background()
	m := benchfix.ModelWorkload(attrs, rows)
	head := 0
	for h := 0; h < m.Table.NumAttrs(); h++ {
		if len(m.H.In(h)) > len(m.H.In(head)) {
			head = h
		}
	}
	rulesOpt := core.MineOptions{MaxRules: 10}

	newEngine := func() *engine.Engine {
		e, err := engine.New(m, engine.Options{})
		if err != nil {
			panic(err)
		}
		return e
	}

	// Rules: v1 recompute-per-call vs engine cold (first query, pays
	// the mine + cache store) vs engine warm (pure cache read).
	rulesV1 := run("Rules/v1-per-call", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MineRules(m, head, rulesOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	run("Rules/engine-cold", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := newEngine().Rules(ctx, head, rulesOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng := newEngine()
	if _, err := eng.Rules(ctx, head, rulesOpt); err != nil {
		panic(err)
	}
	rulesWarm := run("Rules/engine-warm", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Rules(ctx, head, rulesOpt); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Rules warm vs v1 recompute", rulesV1, rulesWarm)

	// Similarity ranking: the v1 repeat-caller path rebuilds the
	// graph per call (BuildSimilarityGraph has no cache); the engine
	// reads one memoized matrix row. The row-recompute baseline (what
	// the old CLI did for a single ranking) is recorded for reference.
	h := m.H
	all := make([]int, h.NumVertices())
	for i := range all {
		all[i] = i
	}
	aName := h.VertexName(0)
	simReq := &engine.Request{Similar: &engine.SimilarRequest{A: aName, Top: 10}}
	simV1 := run("SimilarRank/v1-rebuild-graph", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := similarity.BuildGraphParallel(h, all, 1)
			if err != nil {
				b.Fatal(err)
			}
			if g.Dist(0, 1) < 0 {
				b.Fatal("impossible")
			}
		}
	})
	run("SimilarRank/v1-recompute-row", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for v := 1; v < h.NumVertices(); v++ {
				if similarity.Distance(h, 0, v) < 0 {
					b.Fatal("impossible")
				}
			}
		}
	})
	run("SimilarRank/engine-cold", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := newEngine().Do(ctx, simReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := eng.Do(ctx, simReq); err != nil {
		panic(err)
	}
	simWarm := run("SimilarRank/engine-warm", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Do(ctx, simReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "SimilarRank warm vs v1 rebuild", simV1, simWarm)

	// Classify: the v1 one-shot path allocates a fresh scratch per
	// call; the engine's pooled warm path must not allocate at all.
	abc, err := eng.Classifier(ctx)
	if err != nil {
		panic(err)
	}
	dom, err := eng.Dominator(ctx, engine.DefaultDomSpec())
	if err != nil {
		panic(err)
	}
	targets, err := eng.Targets(ctx)
	if err != nil {
		panic(err)
	}
	domVals := make([]table.Value, len(dom.DomSet))
	for j := range domVals {
		domVals[j] = table.Value(1 + j%3)
	}
	target := targets[0]
	classifyV1 := run("Classify/v1-one-shot", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := abc.Predict(domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, _, err := eng.Predict(ctx, domVals, target); err != nil {
		panic(err)
	}
	classifyWarm := run("Classify/engine-warm", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Predict(ctx, domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Classify warm vs v1 one-shot", classifyV1, classifyWarm)

	// Enforce the acceptance bars.
	failed := false
	if sp := rulesV1.NsPerOp / rulesWarm.NsPerOp; sp < 10 {
		fmt.Fprintf(os.Stderr, "FAIL: warm rules %.1fx vs v1, want >= 10x\n", sp)
		failed = true
	}
	if sp := simV1.NsPerOp / simWarm.NsPerOp; sp < 10 {
		fmt.Fprintf(os.Stderr, "FAIL: warm similarity ranking %.1fx vs v1, want >= 10x\n", sp)
		failed = true
	}
	if classifyWarm.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: warm classify path allocates %d/op, want 0\n", classifyWarm.AllocsPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	return rep
}

// suiteAdmit measures what admission control adds to the cheapest
// request the server handles: a warm single-observation classify
// through the full HTTP handler (mux dispatch, JSON decode, engine
// call, JSON encode). The admission side runs every mechanism — two
// token buckets, the cheap concurrency gate, and the circuit breaker
// — configured permissively so nothing sheds and the measured cost is
// the pure bookkeeping on the admit path. The raw Admit/Done ticket
// round trip is also recorded for reference. The acceptance bar
// (admission < 2% on warm classify) is enforced: a miss exits
// nonzero. Measured at the handler level because the raw warm
// classify call is ~100ns — a 2% bar there is below clock resolution
// — while the handler is the smallest unit a real request ever pays.
func suiteAdmit(quick bool) *report {
	attrs, rows := 30, 20000
	if quick {
		attrs, rows = 12, 1500
	}
	rep := &report{
		PR:         7,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "admission-control overhead on the warm classify path. The " +
			"acceptance ratio divides the admission round trip (AdmitInto + " +
			"Done with every mechanism active: tenant and model token " +
			"buckets, cheap-class concurrency gate, circuit breaker — " +
			"measured to nanosecond precision) by the warm classify handler's " +
			"service time (mux dispatch, JSON decode, engine call, JSON " +
			"encode — the smallest unit a real request ever pays; the wire " +
			"adds tens of microseconds more, so this denominator is " +
			"conservative). The paired handler comparison is recorded for " +
			"transparency but is noise-bound: on this single-core host " +
			"back-to-back ~10us handler runs drift by several hundred ns, " +
			"larger than the admission cost itself. PR-7 bar: < 2%.",
	}
	ctx := context.Background()
	m := benchfix.ModelWorkload(attrs, rows)

	// One registry backs both handler variants: the warm classify read
	// path is stateless, so sharing keeps both sides on the exact same
	// memoized artifacts.
	reg := registry.New(registry.Options{})
	if _, err := reg.Load("bench", m); err != nil {
		panic(err)
	}

	// Derive a valid classify request from the model's own dominator.
	eng, err := engine.New(m, engine.Options{})
	if err != nil {
		panic(err)
	}
	dom, err := eng.Dominator(ctx, engine.DefaultDomSpec())
	if err != nil {
		panic(err)
	}
	targets, err := eng.Targets(ctx)
	if err != nil {
		panic(err)
	}
	values := make(map[string]int, len(dom.DomSet))
	for j, a := range dom.DomSet {
		values[m.H.VertexName(a)] = 1 + j%3
	}
	body, err := json.Marshal(map[string]any{
		"target": m.H.VertexName(targets[0]),
		"values": values,
	})
	if err != nil {
		panic(err)
	}

	ctl := admit.NewController(admit.Config{
		TenantRate: 1e12, TenantBurst: 1e12,
		ModelRate: 1e12, ModelBurst: 1e12,
		CheapCapacity: 64, CheapQueue: 64,
		ExpensiveCapacity: 8, ExpensiveQueue: 16,
		BreakerFailures: 100,
	})
	plain := server.New(reg).Handler()
	admitted := server.New(reg, server.WithAdmission(ctl)).Handler()

	bench := func(h http.Handler) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/models/bench/classify", bytes.NewReader(body))
				req.Header.Set("X-Tenant", "bench")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("code %d: %s", w.Code, w.Body.String())
				}
			}
		}
	}
	// Warm both sides (first query builds the classifier set) before
	// timing anything.
	for _, h := range []http.Handler{plain, admitted} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/models/bench/classify", bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			panic(fmt.Sprintf("warmup: code %d: %s", w.Code, w.Body.String()))
		}
	}
	base, adm := runPair(rep,
		"ClassifyHTTP/no-admission", bench(plain),
		"ClassifyHTTP/admission", bench(admitted))
	compareOverhead(rep, "admission on warm classify (paired, noise-bound)", base, adm)

	tick := run("Admit/ticket-round-trip", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var tk admit.Ticket
			admitted, rej, err := ctl.AdmitInto(ctx, &tk, "bench", "bench", admit.Cheap)
			if !admitted {
				b.Fatalf("unexpected rejection: %v %v", rej, err)
			}
			tk.Done(admit.OutcomeOK)
		}
	})

	// The acceptance ratio: precisely-measured admission cost over the
	// handler's warm service time.
	over := tick.NsPerOp / base.NsPerOp * 100
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name:        "admission overhead on warm classify",
		Baseline:    base.Name,
		Optimized:   tick.Name,
		OverheadPct: math.Round(over*100) / 100,
	})
	fmt.Printf("  -> admission overhead on warm classify: %+.2f%% (%.0f ns ticket / %.0f ns handler)\n",
		over, tick.NsPerOp, base.NsPerOp)
	if over >= 2 {
		fmt.Fprintf(os.Stderr, "FAIL: admission overhead %+.2f%% on warm classify, want < 2%%\n", over)
		os.Exit(1)
	}
	if tick.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "FAIL: admission round trip allocates %d/op, want 0\n", tick.AllocsPerOp)
		os.Exit(1)
	}
	return rep
}

// suiteTelemetry measures what the PR-8 observability layer adds to
// the cheapest request the server handles: a warm single-observation
// classify through the full HTTP handler, with request tracing enabled
// but cold-sampled (SampleEvery < 0: every request collects, nothing
// is retained — the steady-state configuration under load). Latency
// histograms cannot be switched off (they are the /metrics contract),
// so their cost is measured as a raw primitive instead of a handler
// pair. The acceptance ratio divides the full per-request telemetry
// transaction — traceparent parse, trace start, one phase span, one
// histogram Observe, unretained finish, each measured to nanosecond
// precision — by the warm classify handler's service time, mirroring
// the PR-7 method. Bars: transaction < 2% of the handler, and zero
// allocations on Observe and on the cold-sampled trace cycle.
func suiteTelemetry(quick bool) *report {
	attrs, rows := 30, 20000
	if quick {
		attrs, rows = 12, 1500
	}
	rep := &report{
		PR:         8,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "observability overhead on the warm classify path. The " +
			"acceptance ratio divides the per-request telemetry transaction " +
			"(absent-traceparent check + trace start + one phase span + one " +
			"histogram Observe + context trace-ID fetch + unretained finish, " +
			"measured to nanosecond " +
			"precision) by the warm classify handler's service time (mux " +
			"dispatch, JSON decode, engine call, JSON encode — the smallest " +
			"unit a real request ever pays). The paired handler comparison " +
			"(tracing on, cold-sampled, vs off) is recorded for transparency " +
			"but is noise-bound on a single-core host. PR-8 bars: " +
			"transaction < 2%, Observe and the cold-sampled trace cycle " +
			"allocation-free.",
	}
	ctx := context.Background()
	m := benchfix.ModelWorkload(attrs, rows)

	reg := registry.New(registry.Options{})
	if _, err := reg.Load("bench", m); err != nil {
		panic(err)
	}

	eng, err := engine.New(m, engine.Options{})
	if err != nil {
		panic(err)
	}
	dom, err := eng.Dominator(ctx, engine.DefaultDomSpec())
	if err != nil {
		panic(err)
	}
	targets, err := eng.Targets(ctx)
	if err != nil {
		panic(err)
	}
	values := make(map[string]int, len(dom.DomSet))
	for j, a := range dom.DomSet {
		values[m.H.VertexName(a)] = 1 + j%3
	}
	body, err := json.Marshal(map[string]any{
		"target": m.H.VertexName(targets[0]),
		"values": values,
	})
	if err != nil {
		panic(err)
	}

	// Cold-sampled: every request mints an ID and collects spans, but
	// only slow (>=100ms) or errored traces are retained — the warm
	// classify path retains nothing and must allocate nothing.
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleEvery: -1})
	plain := server.New(reg).Handler()
	traced := server.New(reg, server.WithTracer(tracer)).Handler()

	bench := func(h http.Handler) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/models/bench/classify", bytes.NewReader(body))
				req.Header.Set("X-Tenant", "bench")
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("code %d: %s", w.Code, w.Body.String())
				}
			}
		}
	}
	for _, h := range []http.Handler{plain, traced} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/models/bench/classify", bytes.NewReader(body)))
		if w.Code != http.StatusOK {
			panic(fmt.Sprintf("warmup: code %d: %s", w.Code, w.Body.String()))
		}
	}
	base, trc := runPair(rep,
		"ClassifyHTTP/no-tracing", bench(plain),
		"ClassifyHTTP/tracing-cold", bench(traced))
	compareOverhead(rep, "cold-sampled tracing on warm classify (paired, noise-bound)", base, trc)

	// Raw primitives, each measured alone.
	benchReg := telemetry.NewRegistry()
	hist := benchReg.Histogram("bench_seconds", "bench histogram", `kind="classify"`)
	obs := run("Telemetry/histogram-observe", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hist.Observe(time.Duration(i%1000) * time.Microsecond)
		}
	})
	// Steady-state requests carry no traceparent header: the parse is a
	// length check. The full parse of a well-formed header is recorded
	// for reference but is a per-propagated-request cost, not the
	// per-request floor.
	parse := run("Telemetry/traceparent-absent", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := telemetry.ParseTraceparent(""); ok {
				b.Fatal("empty header should not parse")
			}
		}
	})
	const goodTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	run("Telemetry/traceparent-parse", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := telemetry.ParseTraceparent(goodTP); !ok {
				b.Fatal("parse failed")
			}
		}
	})
	cycle := run("Telemetry/trace-cycle-unretained", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			act := tracer.Start(telemetry.TraceID{}, "classify", "bench", "bench")
			act.AddSpan("classifier", 0, 1000)
			tracer.Finish(act, time.Microsecond, http.StatusOK, "")
		}
	})
	tctx := telemetry.ContextWithTrace(ctx, tracer.Start(telemetry.TraceID{}, "classify", "bench", "bench"))
	fetch := run("Telemetry/trace-id-from-ctx", rep, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if id := telemetry.TraceIDFrom(tctx); id.IsZero() {
				b.Fatal("zero trace ID")
			}
		}
	})

	// The acceptance ratio: the whole per-request telemetry transaction
	// over the handler's warm service time.
	txNs := obs.NsPerOp + parse.NsPerOp + cycle.NsPerOp + fetch.NsPerOp
	over := txNs / base.NsPerOp * 100
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name:        "telemetry transaction on warm classify",
		Baseline:    base.Name,
		Optimized:   "Telemetry/transaction",
		OverheadPct: math.Round(over*100) / 100,
	})
	fmt.Printf("  -> telemetry transaction on warm classify: %+.2f%% (%.0f ns transaction / %.0f ns handler)\n",
		over, txNs, base.NsPerOp)
	failed := false
	if over >= 2 {
		fmt.Fprintf(os.Stderr, "FAIL: telemetry transaction %+.2f%% on warm classify, want < 2%%\n", over)
		failed = true
	}
	for _, r := range []benchResult{obs, cycle, fetch} {
		if r.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "FAIL: %s allocates %d/op, want 0\n", r.Name, r.AllocsPerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	return rep
}

// suitePR2 is the original PR-2 query-stack suite.
func suitePR2(quick bool) *report {
	nv, edges, simN := 80, 4000, 40
	abcAttrs, abcRows := 30, 1500
	if quick {
		nv, edges, simN = 30, 600, 12
		abcAttrs, abcRows = 12, 300
	}

	rep := &report{
		PR:         2,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "legacy baselines are in-process reconstructions of the " +
			"pre-PR-2 read path (string EdgeKey map, allocating substitution, " +
			"serial loops); parallel speedups are bounded by gomaxprocs on this host",
	}

	// The exact workloads of the package benches (internal/benchfix).
	h := benchfix.RandomHypergraph(7, nv, edges, 3)
	keys := legacyKeys(h)
	n := h.NumEdges()

	lookupLegacy := run("Lookup/legacy-string-key", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := h.Edge(i % n)
			if _, ok := keys[hypergraph.EdgeKey(e.Tail, e.Head)]; !ok {
				b.Fatal("edge vanished")
			}
		}
	})
	lookupPacked := run("Lookup/packed-uint64", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := h.Edge(i % n)
			if _, ok := h.Lookup(e.Tail, e.Head); !ok {
				b.Fatal("edge vanished")
			}
		}
	})
	compare(rep, "Lookup packed vs legacy", lookupLegacy, lookupPacked)

	outSimLegacy := run("OutSim/legacy", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = legacyOutSim(h, keys, i%nv, (i+1)%nv)
		}
	})
	outSimNew := run("OutSim/packed", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = similarity.OutSim(h, i%nv, (i+1)%nv)
		}
	})
	compare(rep, "OutSim packed vs legacy", outSimLegacy, outSimNew)

	all := make([]int, simN)
	for i := range all {
		all[i] = i
	}
	bgLegacy := run("BuildGraph/legacy-serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := make([][]float64, simN)
			for r := range d {
				d[r] = make([]float64, simN)
			}
			for r := 0; r < simN; r++ {
				for c := r + 1; c < simN; c++ {
					v := 1 - (legacyInSim(h, keys, all[r], all[c])+legacyOutSim(h, keys, all[r], all[c]))/2
					d[r][c], d[c][r] = v, v
				}
			}
		}
	})
	bgSerial := run("BuildGraph/serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := similarity.BuildGraphParallel(h, all, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	bgParallel := run("BuildGraph/parallel", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := similarity.BuildGraph(h, all); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "BuildGraph serial vs legacy", bgLegacy, bgSerial)
	compare(rep, "BuildGraph parallel vs legacy", bgLegacy, bgParallel)
	compare(rep, "BuildGraph parallel vs serial", bgSerial, bgParallel)

	abc, tb := benchfix.ABCWorkload(abcAttrs, abcRows)
	p := abc.NewPredictor()
	domVals := []table.Value{1, 2, 3, 1, 2}
	target := abc.Targets()[0]
	predOneShot := run("Predict/one-shot", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := abc.Predict(domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	predScratch := run("Predict/predictor", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Predict(domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Predict scratch vs one-shot", predOneShot, predScratch)

	// Legacy Evaluate: the pre-PR-2 row loop allocated one scratch per
	// Predict call; reproduce it through the one-shot entry point.
	evalLegacy := run("Evaluate/legacy-alloc-per-predict", rep, func(b *testing.B) {
		dv := make([]table.Value, len(abc.Dominator()))
		for i := 0; i < b.N; i++ {
			for r := 0; r < tb.NumRows(); r++ {
				for j, a := range abc.Dominator() {
					dv[j] = tb.At(r, a)
				}
				for _, y := range abc.Targets() {
					if _, _, err := abc.Predict(dv, y); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	evalSerial := run("Evaluate/serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := abc.EvaluateParallel(tb, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	evalParallel := run("Evaluate/parallel", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := abc.Evaluate(tb); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Evaluate serial vs legacy", evalLegacy, evalSerial)
	compare(rep, "Evaluate parallel vs legacy", evalLegacy, evalParallel)
	compare(rep, "Evaluate parallel vs serial", evalSerial, evalParallel)

	targets := make([]int, h.NumVertices())
	for i := range targets {
		targets[i] = i
	}
	run("DominatorGreedyDS/memoized", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cover.DominatorGreedyDS(h, targets, cover.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return rep
}

// suiteDelta measures the PR-9 incremental mining subsystem. The
// subsystem's reason to exist is that appending a handful of rows to a
// served model should cost far less than the full re-mine it replaces,
// so the suite enforces exactly that: steady-state delta appends at 1
// and 10 rows must beat core.Build on the concatenated table, and the
// end-to-end registry append-republish (delta + engine carry-over +
// retire-and-drain swap) must beat full Build-plus-reload. The 100-row
// point is recorded without a bar to show where the advantage narrows.
// The one-time count-seeding cost of a dataset's first append is
// reported separately so the steady-state numbers stay clean.
func suiteDelta(quick bool) *report {
	attrs, rows := 30, 20000
	if quick {
		attrs, rows = 12, 1500
	}
	rep := &report{
		PR:         9,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "incremental mining: delta appends recompute only count-derived " +
			"statistics from persistent integer joint counts, so per-append cost " +
			"is governed by the statistic space (pairs + admitted triples), not " +
			"the table length. Full-re-mine baselines build the identical " +
			"concatenated table from scratch; bit-for-bit equivalence of the two " +
			"paths is proven by the internal/delta differential tests, so these " +
			"comparisons are pure speed. Registry rows measure the end-to-end " +
			"republish including engine carry-over and the generation swap. The " +
			"first-append row is the one-time count seeding from the TID index, " +
			"paid once per served model, reported separately.",
	}
	ctx := context.Background()
	m := benchfix.ModelWorkload(attrs, rows)

	// Deterministic append batches, value-distributed like the fixture
	// (correlated through a per-row base so appends land on admitted
	// statistics rather than only noise cells).
	makeRows := func(n int, seed int64) [][]table.Value {
		rng := rand.New(rand.NewSource(seed))
		out := make([][]table.Value, n)
		for i := range out {
			row := make([]table.Value, attrs)
			base := table.Value(1 + rng.Intn(3))
			for j := range row {
				if rng.Intn(3) == 0 {
					row[j] = table.Value(1 + rng.Intn(3))
				} else {
					row[j] = base
				}
			}
			out[i] = row
		}
		return out
	}
	seedBatch := makeRows(1, 101)

	// One-time seeding: a fresh dataset's first append pays one pass
	// over the TID index to fill the persistent joint counts.
	run("Delta/first-append-seeds-counts", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds, err := delta.New(m, delta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := ds.AppendRowsContext(ctx, seedBatch); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Steady-state delta vs full re-mine at each batch size. The full
	// side rebuilds the identical concatenated table every iteration;
	// the delta side appends to a primed dataset (its table grows by
	// b.N*batch rows over the run, which leaves the count-driven
	// per-op cost essentially unchanged).
	failed := false
	for _, n := range []int{1, 10, 100} {
		batch := makeRows(n, int64(200+n))
		nt, err := m.Table.AppendRows(batch)
		if err != nil {
			panic(err)
		}
		full := run(fmt.Sprintf("Full/re-mine+%drows", n), rep, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BuildContext(ctx, nt, m.Config); err != nil {
					b.Fatal(err)
				}
			}
		})
		ds, err := delta.New(m, delta.Options{})
		if err != nil {
			panic(err)
		}
		if _, _, err := ds.AppendRowsContext(ctx, seedBatch); err != nil {
			panic(err)
		}
		inc := run(fmt.Sprintf("Delta/append+%drows", n), rep, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.AppendRowsContext(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		compare(rep, fmt.Sprintf("delta vs full re-mine at %d rows", n), full, inc)
		if n <= 10 && inc.NsPerOp >= full.NsPerOp {
			fmt.Fprintf(os.Stderr, "FAIL: %d-row delta append (%.0f ns/op) not faster than full re-mine (%.0f ns/op)\n",
				n, inc.NsPerOp, full.NsPerOp)
			failed = true
		}
	}

	// End-to-end republish at 1 row: registry append vs the full path
	// it replaces (Build on the concatenated table, then Load). One
	// warm rules query first so every republish re-primes a live TID
	// index, exactly as an append against a serving model would.
	one := makeRows(1, 301)
	nt1, err := m.Table.AppendRows(one)
	if err != nil {
		panic(err)
	}
	warmIndex := func(r *registry.Registry) {
		sv := r.Acquire("m")
		defer sv.Release()
		if _, err := sv.Engine().Rules(ctx, 0, core.MineOptions{MaxRules: 5}); err != nil {
			panic(err)
		}
	}
	regFull := registry.New(registry.Options{})
	if _, err := regFull.Load("m", m); err != nil {
		panic(err)
	}
	warmIndex(regFull)
	fullReload := run("Registry/full-build+reload+1row", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nm, err := core.BuildContext(ctx, nt1, m.Config)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := regFull.Load("m", nm); err != nil {
				b.Fatal(err)
			}
		}
	})
	regInc := registry.New(registry.Options{})
	if _, err := regInc.Load("m", m); err != nil {
		panic(err)
	}
	warmIndex(regInc)
	if _, err := regInc.AppendRows("m", seedBatch); err != nil {
		panic(err)
	}
	incAppend := run("Registry/append-republish+1row", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := regInc.AppendRows("m", one); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "registry append vs full build+reload at 1 row", fullReload, incAppend)
	if incAppend.NsPerOp >= fullReload.NsPerOp {
		fmt.Fprintf(os.Stderr, "FAIL: registry append-republish (%.0f ns/op) not faster than full build+reload (%.0f ns/op)\n",
			incAppend.NsPerOp, fullReload.NsPerOp)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	return rep
}

// fleetModelInfo is the slice of the model detail the fleet suite
// needs to build classify bodies.
type fleetModelInfo struct {
	K         int      `json:"k"`
	Dominator []string `json:"dominator"`
	Targets   []string `json:"targets"`
}

// fleetDo sends one request and fails the benchmark on a non-200.
func fleetDo(b *testing.B, client *http.Client, method, url, contentType string, body []byte) {
	var rd *bytes.Reader
	var req *http.Request
	var err error
	if body != nil {
		rd = bytes.NewReader(body)
		req, err = http.NewRequest(method, url, rd)
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := client.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("%s %s: %d", method, url, resp.StatusCode)
	}
}

// suiteFleet measures the PR-10 sharded serving tier: what the router
// adds to a warm classify round trip versus querying the owning
// replica directly (one extra loopback HTTP hop plus body buffering),
// and what synchronous replication to the replica set adds to a
// snapshot PUT as snapshot size grows. The forwarding bar is absolute:
// routed minus direct must stay under 2ms on loopback — the router
// adds one local hop, and anything near milliseconds means a
// buffering or connection-reuse regression, not hop cost.
func suiteFleet(quick bool) *report {
	attrs, rows := 24, 20000
	sizes := []int{2000, 8000, 32000}
	if quick {
		attrs, rows = 12, 1500
		sizes = []int{500, 2000, 8000}
	}
	rep := &report{
		PR:         10,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "fleet serving tier over real loopback HTTP with a pooled " +
			"(keep-alive) client: routed-vs-direct measures the router's " +
			"forwarding overhead for a warm classify (bar: < 2ms absolute); " +
			"replicated-vs-standalone PUT measures synchronous snapshot " +
			"replication to one peer replica across snapshot sizes. " +
			"Single-core host: concurrency correctness is proven by the " +
			"race-enabled fleet tests and the deterministic multi-node sim, " +
			"not by parallel speedup here.",
	}

	client := &http.Client{Timeout: time.Minute}
	cluster, err := sim.NewClusterWithClient(3, 2, 0, client)
	if err != nil {
		panic(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	if err := cluster.Converge(ctx); err != nil {
		panic(err)
	}

	const model = "bench"
	fmt.Printf("building %dx%d model and publishing through the router...\n", rows, attrs)
	m := benchfix.ModelWorkload(attrs, rows)
	var snap bytes.Buffer
	if err := core.WriteSnapshot(&snap, m, core.SaveOptions{}); err != nil {
		panic(err)
	}
	put := func(url string) error {
		req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(snap.Bytes()))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("PUT %s: %d", url, resp.StatusCode)
		}
		return nil
	}
	if err := put(cluster.RouterURL() + "/v1/models/" + model); err != nil {
		panic(err)
	}

	owners := cluster.Ring().Owners(model)
	ownerURL := cluster.NodeURL(owners[0])
	resp, err := client.Get(ownerURL + "/v1/models/" + model)
	if err != nil {
		panic(err)
	}
	var info fleetModelInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || len(info.Dominator) == 0 || len(info.Targets) == 0 {
		panic(fmt.Sprintf("model detail unusable: %v %+v", err, info))
	}
	values := map[string]int{}
	for _, a := range info.Dominator {
		values[a] = 1
	}
	classifyBody, err := json.Marshal(map[string]any{"target": info.Targets[0], "values": values})
	if err != nil {
		panic(err)
	}

	// Routed vs direct warm classify: interleaved best-of-3 (runPair),
	// the same estimator the other overhead suites use.
	classifyPath := "/v1/models/" + model + "/classify"
	direct, routed := runPair(rep,
		"Classify/direct-to-owner", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fleetDo(b, client, http.MethodPost, ownerURL+classifyPath, "application/json", classifyBody)
			}
		},
		"Classify/through-router", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fleetDo(b, client, http.MethodPost, cluster.RouterURL()+classifyPath, "application/json", classifyBody)
			}
		})
	overheadNs := routed.NsPerOp - direct.NsPerOp
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name:        "router forwarding overhead (warm classify)",
		Baseline:    direct.Name,
		Optimized:   routed.Name,
		Speedup:     math.Round(direct.NsPerOp/routed.NsPerOp*100) / 100,
		OverheadPct: math.Round(overheadNs/direct.NsPerOp*10000) / 100,
	})
	fmt.Printf("  -> router forwarding overhead: %.1fus/request (bar < 2ms)\n", overheadNs/1e3)

	// Replication cost: a snapshot PUT on a fleet owner (synchronously
	// replicated to the one peer replica, R=2) versus the same PUT on a
	// standalone server, per snapshot size.
	standalone := httptest.NewServer(server.New(registry.New(registry.Options{}),
		server.WithLogger(slog.New(slog.DiscardHandler))).Handler())
	defer standalone.Close()
	for _, n := range sizes {
		sm := benchfix.ModelWorkload(attrs, n)
		var sb bytes.Buffer
		if err := core.WriteSnapshot(&sb, sm, core.SaveOptions{}); err != nil {
			panic(err)
		}
		name := fmt.Sprintf("size%d", n)
		soloURL := standalone.URL + "/v1/models/" + name
		// The fleet PUT goes to the model's own primary owner so the
		// measured path is always accept-then-replicate, never a proxy.
		fleetURL := cluster.NodeURL(cluster.Ring().Owner(name)) + "/v1/models/" + name
		solo, repl := runPair(rep,
			fmt.Sprintf("SnapshotPut/standalone-rows-%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fleetDo(b, client, http.MethodPut, soloURL, "application/octet-stream", sb.Bytes())
				}
			},
			fmt.Sprintf("SnapshotPut/replicated-rows-%d", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fleetDo(b, client, http.MethodPut, fleetURL, "application/octet-stream", sb.Bytes())
				}
			})
		rep.Comparisons = append(rep.Comparisons, comparison{
			Name:      fmt.Sprintf("replication cost at %d rows (%d snapshot bytes)", n, sb.Len()),
			Baseline:  solo.Name,
			Optimized: repl.Name,
			Speedup:   math.Round(solo.NsPerOp/repl.NsPerOp*100) / 100,
		})
		fmt.Printf("  -> replication adds %.1fus at %d rows (%d-byte snapshot)\n",
			(repl.NsPerOp-solo.NsPerOp)/1e3, n, sb.Len())
	}

	if overheadNs >= 2e6 {
		fmt.Fprintf(os.Stderr, "FAIL: router forwarding overhead %.2fms, bar < 2ms\n", overheadNs/1e6)
		os.Exit(1)
	}
	return rep
}
