// Command bench measures the PR-2 query-stack benchmarks — packed-key
// lookups, allocation-free similarity, scratch-reusing classification,
// and the parallel BuildGraph/Evaluate paths — against reconstructions
// of the legacy (string-keyed, allocating, serial) implementations,
// and writes the results as machine-readable JSON for the repo's
// BENCH_* perf trajectory.
//
// Usage:
//
//	go run ./cmd/bench [-out BENCH_2.json] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"hypermine/internal/benchfix"
	"hypermine/internal/cover"
	"hypermine/internal/hypergraph"
	"hypermine/internal/similarity"
	"hypermine/internal/table"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type comparison struct {
	Name      string  `json:"name"`
	Baseline  string  `json:"baseline"`
	Optimized string  `json:"optimized"`
	Speedup   float64 `json:"speedup"`
}

type report struct {
	PR          int           `json:"pr"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	GoVersion   string        `json:"go_version"`
	Note        string        `json:"note"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Comparisons []comparison  `json:"comparisons"`
}

func run(name string, rep *report, fn func(b *testing.B)) benchResult {
	r := testing.Benchmark(fn)
	res := benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	rep.Benchmarks = append(rep.Benchmarks, res)
	fmt.Printf("%-42s %12.1f ns/op %8d B/op %6d allocs/op\n",
		name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func compare(rep *report, name string, base, opt benchResult) {
	sp := base.NsPerOp / opt.NsPerOp
	rep.Comparisons = append(rep.Comparisons, comparison{
		Name: name, Baseline: base.Name, Optimized: opt.Name,
		Speedup: math.Round(sp*100) / 100,
	})
	fmt.Printf("  -> %s: %.2fx\n", name, sp)
}

// legacyKeys rebuilds the pre-PR-2 string edge index of h.
func legacyKeys(h *hypergraph.H) map[string]int32 {
	m := make(map[string]int32, h.NumEdges())
	for i := 0; i < h.NumEdges(); i++ {
		e := h.Edge(i)
		m[hypergraph.EdgeKey(e.Tail, e.Head)] = int32(i)
	}
	return m
}

// legacyReplaceTail is the pre-PR-2 allocating substitution.
func legacyReplaceTail(tail []int, a1, a2 int) ([]int, bool) {
	out := make([]int, 0, len(tail))
	for _, v := range tail {
		if v == a1 {
			v = a2
		} else if v == a2 {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// legacyOutSim reproduces the pre-PR-2 OutSim read path: allocating
// substitution plus string-keyed lookups.
func legacyOutSim(h *hypergraph.H, keys map[string]int32, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.Out(a1)) > 0 {
			return 1
		}
		return 0
	}
	var num, den float64
	for _, i := range h.Out(a1) {
		e := h.Edge(int(i))
		sub, ok := legacyReplaceTail(e.Tail, a1, a2)
		if ok {
			if j, found := keys[hypergraph.EdgeKey(sub, e.Head)]; found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.Out(a2) {
		f := h.Edge(int(i))
		sub, ok := legacyReplaceTail(f.Tail, a2, a1)
		if ok {
			if _, found := keys[hypergraph.EdgeKey(sub, f.Head)]; found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// legacyInSim reproduces the pre-PR-2 InSim read path.
func legacyInSim(h *hypergraph.H, keys map[string]int32, a1, a2 int) float64 {
	if a1 == a2 {
		if len(h.In(a1)) > 0 {
			return 1
		}
		return 0
	}
	contains := func(s []int, v int) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	var num, den float64
	for _, i := range h.In(a1) {
		e := h.Edge(int(i))
		sub, ok := legacyReplaceTail(e.Head, a1, a2)
		if ok && !contains(e.Tail, a2) {
			if j, found := keys[hypergraph.EdgeKey(e.Tail, sub)]; found {
				f := h.Edge(int(j))
				num += math.Min(e.Weight, f.Weight)
				den += math.Max(e.Weight, f.Weight)
				continue
			}
		}
		den += e.Weight
	}
	for _, i := range h.In(a2) {
		f := h.Edge(int(i))
		sub, ok := legacyReplaceTail(f.Head, a2, a1)
		if ok && !contains(f.Tail, a1) {
			if _, found := keys[hypergraph.EdgeKey(f.Tail, sub)]; found {
				continue
			}
		}
		den += f.Weight
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func main() {
	out := flag.String("out", "BENCH_2.json", "output JSON path ('-' for stdout only)")
	quick := flag.Bool("quick", false, "shrink workloads for CI smoke runs")
	flag.Parse()

	nv, edges, simN := 80, 4000, 40
	abcAttrs, abcRows := 30, 1500
	if *quick {
		nv, edges, simN = 30, 600, 12
		abcAttrs, abcRows = 12, 300
	}

	rep := &report{
		PR:         2,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "legacy baselines are in-process reconstructions of the " +
			"pre-PR-2 read path (string EdgeKey map, allocating substitution, " +
			"serial loops); parallel speedups are bounded by gomaxprocs on this host",
	}

	// The exact workloads of the package benches (internal/benchfix).
	h := benchfix.RandomHypergraph(7, nv, edges, 3)
	keys := legacyKeys(h)
	n := h.NumEdges()

	lookupLegacy := run("Lookup/legacy-string-key", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := h.Edge(i % n)
			if _, ok := keys[hypergraph.EdgeKey(e.Tail, e.Head)]; !ok {
				b.Fatal("edge vanished")
			}
		}
	})
	lookupPacked := run("Lookup/packed-uint64", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := h.Edge(i % n)
			if _, ok := h.Lookup(e.Tail, e.Head); !ok {
				b.Fatal("edge vanished")
			}
		}
	})
	compare(rep, "Lookup packed vs legacy", lookupLegacy, lookupPacked)

	outSimLegacy := run("OutSim/legacy", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = legacyOutSim(h, keys, i%nv, (i+1)%nv)
		}
	})
	outSimNew := run("OutSim/packed", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = similarity.OutSim(h, i%nv, (i+1)%nv)
		}
	})
	compare(rep, "OutSim packed vs legacy", outSimLegacy, outSimNew)

	all := make([]int, simN)
	for i := range all {
		all[i] = i
	}
	bgLegacy := run("BuildGraph/legacy-serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := make([][]float64, simN)
			for r := range d {
				d[r] = make([]float64, simN)
			}
			for r := 0; r < simN; r++ {
				for c := r + 1; c < simN; c++ {
					v := 1 - (legacyInSim(h, keys, all[r], all[c])+legacyOutSim(h, keys, all[r], all[c]))/2
					d[r][c], d[c][r] = v, v
				}
			}
		}
	})
	bgSerial := run("BuildGraph/serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := similarity.BuildGraphParallel(h, all, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	bgParallel := run("BuildGraph/parallel", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := similarity.BuildGraph(h, all); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "BuildGraph serial vs legacy", bgLegacy, bgSerial)
	compare(rep, "BuildGraph parallel vs legacy", bgLegacy, bgParallel)
	compare(rep, "BuildGraph parallel vs serial", bgSerial, bgParallel)

	abc, tb := benchfix.ABCWorkload(abcAttrs, abcRows)
	p := abc.NewPredictor()
	domVals := []table.Value{1, 2, 3, 1, 2}
	target := abc.Targets()[0]
	predOneShot := run("Predict/one-shot", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := abc.Predict(domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	predScratch := run("Predict/predictor", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Predict(domVals, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Predict scratch vs one-shot", predOneShot, predScratch)

	// Legacy Evaluate: the pre-PR-2 row loop allocated one scratch per
	// Predict call; reproduce it through the one-shot entry point.
	evalLegacy := run("Evaluate/legacy-alloc-per-predict", rep, func(b *testing.B) {
		dv := make([]table.Value, len(abc.Dominator()))
		for i := 0; i < b.N; i++ {
			for r := 0; r < tb.NumRows(); r++ {
				for j, a := range abc.Dominator() {
					dv[j] = tb.At(r, a)
				}
				for _, y := range abc.Targets() {
					if _, _, err := abc.Predict(dv, y); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	evalSerial := run("Evaluate/serial", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := abc.EvaluateParallel(tb, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	evalParallel := run("Evaluate/parallel", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := abc.Evaluate(tb); err != nil {
				b.Fatal(err)
			}
		}
	})
	compare(rep, "Evaluate serial vs legacy", evalLegacy, evalSerial)
	compare(rep, "Evaluate parallel vs legacy", evalLegacy, evalParallel)
	compare(rep, "Evaluate parallel vs serial", evalSerial, evalParallel)

	targets := make([]int, h.NumVertices())
	for i := range targets {
		targets[i] = i
	}
	run("DominatorGreedyDS/memoized", rep, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cover.DominatorGreedyDS(h, targets, cover.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	js = append(js, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(js)
	}
}
