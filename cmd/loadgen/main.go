// Command loadgen replays deterministic query mixes against a
// hypermined server and writes the results as machine-readable JSON
// for the repo's BENCH_* perf trajectory.
//
// Two modes:
//
//   - Self-hosted (default): builds the shared benchfix serving model,
//     measures binary-snapshot vs JSON model load, boots an in-process
//     hypermined server on loopback, and replays the mix against it —
//     hot-reloading the model mid-run to prove serving continuity.
//   - Remote (-addr): replays the mix against an already running
//     hypermined (used by the CI serving smoke).
//
// In both modes every classify request is drawn from a fixed pool of
// deterministic queries and each response is compared byte-for-byte
// against the first response to the same query, so the run fails if
// serving answers drift — including across hot reloads.
//
// Usage:
//
//	go run ./cmd/loadgen [-addr URL -model NAME] [-n 2000] [-quick] [-out BENCH_3.json] [-cancel-every N]
//
// With -cancel-every N, every Nth request is replaced by a heavy rules
// query issued under a short client-side deadline — a client that goes
// away mid-request. The run then verifies the server survived the
// burst (healthz + a fresh query succeed, zero identity mismatches on
// the normal traffic) and reports how many aborts the server actually
// observed (from /stats). The server-observed count depends on how
// fast the host delivers the disconnect: on a busy single-core
// machine a sub-10ms handler often finishes before the abort is
// noticed, so the deterministic proof of in-flight abort lives in the
// internal/server unit tests; this scenario proves survival and
// answer integrity under the burst.
//
// With -mix overload, loadgen becomes the fault-injecting overload
// harness for the admission-control subsystem: a deterministic
// concurrency ramp (2 -> 32 workers) drives a server with tiny gates
// past capacity while slow clients stall half-open connections against
// the accept loop and (self-hosted) the model hot-reloads between
// waves. Every response must be either byte-identical to the unloaded
// serial baseline (admitted) or a well-formed rejection (429/503 with
// an integral Retry-After >= 1); the run fails on any violation, on
// zero shed traffic (the ramp must actually saturate), or if /healthz
// stops answering during saturation. In self-hosted mode the in-process
// server is configured with gates cheap=2/queue=4, expensive=1/queue=2;
// in remote mode boot hypermined with -gate-*/-queue-* flags sized
// below the ramp.
//
// With -mix churn, loadgen exercises the incremental mining pipeline:
// concurrent query workers replay the deterministic classify pool
// while the driver POSTs a deterministic schedule of :append batches
// between fixed query counts. Every response is attributed to a
// generation via its X-Model-Generation header and checked two ways —
// identity (responses to the same query at the same generation must be
// byte-identical) and coherence (a response's generation may never be
// older than the latest append acknowledged before the request was
// sent, and each worker's observed generations are monotonic). The run
// fails on any identity mismatch, stale generation, missing header, or
// if the final generation/row count disagrees with the appends
// performed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hypermine/internal/admit"
	"hypermine/internal/benchfix"
	"hypermine/internal/core"
	"hypermine/internal/fleet/sim"
	"hypermine/internal/registry"
	"hypermine/internal/server"
	"hypermine/internal/telemetry"
)

type loadReport struct {
	ReadJSONNs     float64 `json:"read_json_ns"`
	ReadSnapshotNs float64 `json:"read_snapshot_ns"`
	Speedup        float64 `json:"speedup"`
	JSONBytes      int     `json:"json_bytes"`
	SnapshotBytes  int     `json:"snapshot_bytes"`
}

type endpointReport struct {
	Endpoint string  `json:"endpoint"`
	Requests int     `json:"requests"`
	MeanNs   float64 `json:"mean_ns"`
	P50Ns    int64   `json:"p50_ns"`
	P90Ns    int64   `json:"p90_ns"`
	P99Ns    int64   `json:"p99_ns"`
	MaxNs    int64   `json:"max_ns"`
}

// traceClientReport summarizes the X-Trace-Id contract as seen from
// the client side; nil when the server has tracing off.
type traceClientReport struct {
	TracedResponses int `json:"traced_responses"`
	BadTraceIDs     int `json:"bad_trace_ids"`
}

type report struct {
	PR         int    `json:"pr"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note"`
	Model      struct {
		Attrs int `json:"attrs"`
		Rows  int `json:"rows"`
		Edges int `json:"edges"`
		K     int `json:"k"`
	} `json:"model"`
	Load  *loadReport      `json:"load,omitempty"`
	Serve []endpointReport `json:"serve"`
	Total struct {
		Requests int     `json:"requests"`
		WallNs   int64   `json:"wall_ns"`
		QPS      float64 `json:"qps"`
	} `json:"total"`
	Mix                string `json:"mix"`
	Reloads            int    `json:"reloads"`
	IdentityMismatches int    `json:"identity_mismatches"`
	// Trace reports X-Trace-Id coverage across all responses; nil when
	// the server never sent the header (tracing off).
	Trace *traceClientReport `json:"trace,omitempty"`
	// Cancel reports the client-side timeout injection scenario
	// (-cancel-every); nil when disabled.
	Cancel *cancelReport `json:"cancel,omitempty"`
	// Overload reports the -mix overload scenario; nil otherwise.
	Overload *overloadReport `json:"overload,omitempty"`
	// Churn reports the -mix churn append/query scenario; nil otherwise.
	Churn *churnReport `json:"churn,omitempty"`
	// Fleet reports the -mix fleet routed-cluster scenario; nil otherwise.
	Fleet *fleetReport `json:"fleet,omitempty"`
	// RetryBackoffs counts requests that were retried after honoring a
	// Retry-After hint on a 429/503 (all mixes except overload, which
	// measures shedding and must observe rejections raw).
	RetryBackoffs int `json:"retry_backoffs"`
}

// fleetReport summarizes the -mix fleet scenario: the default query mix
// driven through a self-hosted 3-node fleet router while the model's
// primary owner is killed, written around, and restarted.
type fleetReport struct {
	Nodes    int    `json:"nodes"`
	Replicas int    `json:"replicas"`
	Victim   string `json:"victim"` // the primary owner that gets killed
	Kills    int    `json:"kills"`
	Restarts int    `json:"restarts"`
	// WritesThroughRouter counts snapshot PUTs routed through the fleet
	// router (one with the fleet healthy, one during the outage —
	// exercising write failover).
	WritesThroughRouter int `json:"writes_through_router"`
	// MissingGenHeaders counts routed query responses without
	// X-Model-Generation; must be zero.
	MissingGenHeaders int   `json:"missing_generation_headers"`
	RouterForwards    int64 `json:"router_forwards"`
	RouterFailovers   int64 `json:"router_failovers"`
	FinalGeneration   int64 `json:"final_generation"`
	// GenerationAgreed: after the restart converged, every owner in the
	// model's replica set served the same generation.
	GenerationAgreed bool `json:"generation_agreed"`
	// ReadyAfterRestart: every node answered /readyz 200 at the end.
	ReadyAfterRestart bool `json:"ready_after_restart"`
}

// churnReport summarizes the append/query interleaving scenario.
type churnReport struct {
	Appends      int `json:"appends"`
	AppendedRows int `json:"appended_rows"`
	// Generations is the number of distinct generations observed in
	// query responses (initial + one per published append).
	Generations int `json:"generations"`
	Queries     int `json:"queries"`
	// StaleResponses counts responses whose generation was older than
	// the newest append acknowledged before the request was sent;
	// MissingGenHeaders counts responses without X-Model-Generation;
	// NonMonotonic counts per-worker generation regressions. All three
	// must be zero.
	StaleResponses    int   `json:"stale_responses"`
	MissingGenHeaders int   `json:"missing_generation_headers"`
	NonMonotonic      int   `json:"non_monotonic_generations"`
	FinalGeneration   int64 `json:"final_generation"`
	FinalRows         int   `json:"final_rows"`
}

// overloadReport summarizes the fault-injecting overload scenario.
type overloadReport struct {
	Gates      string       `json:"gates"`
	Waves      []waveReport `json:"waves"`
	StallConns int          `json:"stall_conns"`
	// HealthzDuringOK: the liveness probe kept answering while the
	// biggest wave saturated the gates and slow clients stalled.
	HealthzDuringOK bool `json:"healthz_during_saturation_ok"`
	Admitted        int  `json:"admitted"`
	Shed            int  `json:"shed"`
	// BadRejections counts rejections violating the contract (wrong
	// status, missing or non-integral Retry-After); must be zero.
	BadRejections int `json:"bad_rejections"`
	// ServerShed is the server's own shed counter from /stats after
	// the run (cumulative for the process, so >= Shed on a shared
	// server).
	ServerShed int64 `json:"server_shed"`
	Reloads    int   `json:"reloads"`
}

// waveReport is one rung of the concurrency ramp.
type waveReport struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	Admitted    int `json:"admitted"`
	Shed        int `json:"shed"`
}

// cancelReport summarizes the timeout-injection scenario.
type cancelReport struct {
	Every          int   `json:"every"`
	Injected       int   `json:"injected"`
	ClientTimeouts int   `json:"client_timeouts"`
	ServerCanceled int64 `json:"server_canceled"`
	ServerTimeouts int64 `json:"server_timeouts"`
	SurvivedBurst  bool  `json:"survived_burst"`
}

// traceIDRe is the X-Trace-Id wire contract: 32 lowercase hex digits.
var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// tracedSeen / tracedBad count responses carrying an X-Trace-Id and
// those whose ID violates the contract (wrong shape, or the invalid
// all-zero ID). Package-level atomics so every request path — serial
// replay, overload workers, doOnce — feeds the same tally.
var tracedSeen, tracedBad atomic.Int64

// noteTraceID verifies the X-Trace-Id header on one response.
func noteTraceID(h http.Header) {
	tid := h.Get("X-Trace-Id")
	if tid == "" {
		return
	}
	tracedSeen.Add(1)
	if !traceIDRe.MatchString(tid) || tid == strings.Repeat("0", 32) {
		tracedBad.Add(1)
	}
}

// modelInfo is the subset of the /v1/models/{name} response the
// generator needs.
type modelInfo struct {
	Attrs     int      `json:"attrs"`
	Edges     int      `json:"edges"`
	Rows      int      `json:"rows"`
	K         int      `json:"k"`
	Classify  bool     `json:"classify"`
	Dominator []string `json:"dominator"`
	Targets   []string `json:"targets"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running hypermined ('' = self-hosted)")
	model := flag.String("model", "bench", "model name to query")
	n := flag.Int("n", 2000, "total requests")
	seed := flag.Int64("seed", 7, "query-mix seed")
	reloads := flag.Int("reloads", 3, "hot reloads during the run (self-hosted mode)")
	attrs := flag.Int("attrs", 30, "self-hosted model attributes")
	rows := flag.Int("rows", 20000, "self-hosted model rows")
	out := flag.String("out", "BENCH_3.json", "output JSON path ('-' for stdout only)")
	quick := flag.Bool("quick", false, "shrink workloads for CI smoke runs")
	cancelEvery := flag.Int("cancel-every", 0,
		"replace every Nth request with a rules query under a short client-side deadline (0 = off)")
	mixName := flag.String("mix", "default",
		"query mix: default (dedicated endpoints), batch (multiplexed typed batches via :query), overload (fault-injecting saturation ramp), churn (concurrent queries during :append republishes), or fleet (default mix through a self-hosted 3-node fleet router with a kill/restart mid-run)")
	traceSample := flag.Bool("trace-sample", false,
		"after the run, fetch /debug/traces and pretty-print one retained trace's span tree")
	flag.Parse()

	switch *mixName {
	case "default", "batch", "overload", "churn", "fleet":
	default:
		fatal(fmt.Errorf("unknown -mix %q (want default, batch, overload, churn, or fleet)", *mixName))
	}

	if *quick {
		*n, *attrs, *rows = 400, 12, 1500
		if *mixName == "overload" {
			// The saturation stimulus is cold rules mining; on this
			// model size one mine holds the expensive gate ~15ms, long
			// enough for the other workers to pile up behind it even
			// on a single-core host. The 12x1500 quick model mines in
			// ~1ms and never saturates anything.
			*attrs, *rows = 24, 10000
		}
	}

	rep := &report{
		PR:         3,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "serving-path benchmark over real HTTP on loopback; latencies are " +
			"end-to-end (client encode + HTTP + handler + decode). Single-core " +
			"host: concurrency correctness is proven by race-enabled registry/server " +
			"tests and the byte-identity checks across hot reloads in this run, " +
			"not by parallel speedup numbers.",
	}

	var snapPath string
	var cluster *sim.Cluster
	baseURL := *addr
	if *mixName == "fleet" {
		if baseURL != "" {
			fatal(errors.New("-mix fleet self-hosts its own cluster; -addr is not supported"))
		}
		var err error
		cluster, baseURL, snapPath, err = startFleet(rep, *model, *attrs, *rows)
		if err != nil {
			fatal(err)
		}
		defer cluster.Close()
	} else if baseURL == "" {
		// The overload mix needs something to saturate: tiny gates so
		// the ramp's upper rungs exceed capacity + queue by design.
		var ctl *admit.Controller
		if *mixName == "overload" {
			ctl = admit.NewController(admit.Config{
				CheapCapacity: 2, CheapQueue: 4,
				ExpensiveCapacity: 1, ExpensiveQueue: 2,
			})
		}
		var err error
		baseURL, snapPath, err = selfHost(rep, *model, *attrs, *rows, ctl)
		if err != nil {
			fatal(err)
		}
	} else {
		*reloads = 0 // remote servers are not reloaded from here
	}
	baseURL = strings.TrimRight(baseURL, "/")

	info, err := fetchInfo(baseURL, *model)
	if err != nil {
		fatal(err)
	}
	rep.Model.Attrs, rep.Model.Rows, rep.Model.Edges, rep.Model.K = info.Attrs, info.Rows, info.Edges, info.K
	if !info.Classify || len(info.Targets) == 0 {
		fatal(fmt.Errorf("model %q cannot classify; loadgen needs a classifiable model", *model))
	}

	rep.Mix = *mixName
	switch *mixName {
	case "overload":
		if err := runOverload(rep, baseURL, *model, info, *n, *seed, *reloads, snapPath); err != nil {
			fatal(err)
		}
	case "churn":
		if err := runChurn(rep, baseURL, *model, info, *n, *seed); err != nil {
			fatal(err)
		}
	case "fleet":
		if err := runFleet(rep, cluster, baseURL, *model, info, *n, *seed, snapPath); err != nil {
			fatal(err)
		}
	default:
		if err := replay(rep, baseURL, *model, info, *n, *seed, *reloads, snapPath, *cancelEvery, *mixName); err != nil {
			fatal(err)
		}
	}

	if seen, bad := tracedSeen.Load(), tracedBad.Load(); seen > 0 || bad > 0 {
		rep.Trace = &traceClientReport{TracedResponses: int(seen), BadTraceIDs: int(bad)}
		fmt.Printf("trace IDs: %d responses carried X-Trace-Id, %d malformed\n", seen, bad)
	}

	if *traceSample {
		if err := sampleTrace(baseURL); err != nil {
			fatal(err)
		}
	}

	rep.RetryBackoffs = int(backoffWaits.Load())
	if rep.RetryBackoffs > 0 {
		fmt.Printf("backoff: honored Retry-After %d times\n", rep.RetryBackoffs)
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		os.Stdout.Write(js)
	}
	if rep.IdentityMismatches > 0 {
		fatal(fmt.Errorf("%d identity mismatches", rep.IdentityMismatches))
	}
	if rep.Trace != nil && rep.Trace.BadTraceIDs > 0 {
		fatal(fmt.Errorf("%d malformed X-Trace-Id headers", rep.Trace.BadTraceIDs))
	}
	// The self-hosted server runs with tracing on (as hypermined does by
	// default), so every response must have carried a trace ID. (The
	// fleet mix's nodes run without a tracer, like the sim's.)
	if *addr == "" && *mixName != "fleet" && (rep.Trace == nil || rep.Trace.TracedResponses == 0) {
		fatal(errors.New("self-hosted server returned no X-Trace-Id headers"))
	}
}

// sampleTrace fetches /debug/traces and pretty-prints the slowest
// retained trace's span tree — the operator's view of where a slow
// request spent its time.
func sampleTrace(baseURL string) error {
	resp, err := http.Get(baseURL + "/debug/traces")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Println("trace sample: server has tracing off (/debug/traces not mounted)")
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET /debug/traces: %d: %s", resp.StatusCode, raw)
	}
	var traces struct {
		SlowThresholdNs int64              `json:"slow_threshold_ns"`
		Slow            []*telemetry.Trace `json:"slow"`
		Recent          []*telemetry.Trace `json:"recent"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return err
	}
	// Prefer the slowest trace that has spans to attribute; fall back to
	// the slowest overall.
	var pick *telemetry.Trace
	for _, tr := range append(append([]*telemetry.Trace{}, traces.Slow...), traces.Recent...) {
		switch {
		case pick == nil:
			pick = tr
		case len(tr.Spans) > 0 && len(pick.Spans) == 0:
			pick = tr
		case (len(tr.Spans) > 0) == (len(pick.Spans) > 0) && tr.Duration > pick.Duration:
			pick = tr
		}
	}
	if pick == nil {
		fmt.Println("trace sample: no traces retained yet")
		return nil
	}
	fmt.Printf("trace sample (slow threshold %s):\n", time.Duration(traces.SlowThresholdNs))
	fmt.Printf("%s  kind=%s model=%s tenant=%s status=%d retained=%s  %s\n",
		pick.ID, pick.Kind, pick.Model, pick.Tenant, pick.Status, pick.Reason, pick.Duration.Round(time.Microsecond))
	for i, sp := range pick.Spans {
		branch := "├─"
		if i == len(pick.Spans)-1 {
			branch = "└─"
		}
		fmt.Printf("  %s %-12s +%-12s %s\n", branch, sp.Phase,
			time.Duration(sp.StartNs).Round(time.Microsecond),
			time.Duration(sp.DurationNs).Round(time.Microsecond))
	}
	if len(pick.Spans) == 0 {
		fmt.Println("  └─ (no phase spans: the time went to warm reads or queue wait)")
	}
	if pick.Dropped > 0 {
		fmt.Printf("  … %d more spans dropped at the per-trace cap\n", pick.Dropped)
	}
	if pick.Err != "" {
		fmt.Printf("  error: %s\n", pick.Err)
	}
	return nil
}

// selfHost builds the benchfix model, measures both load paths, saves
// a snapshot for mid-run reloads, and boots an in-process server —
// with the given admission controller in front when ctl is non-nil.
func selfHost(rep *report, name string, attrs, rows int, ctl *admit.Controller) (baseURL, snapPath string, err error) {
	fmt.Printf("building %dx%d serving model...\n", rows, attrs)
	m := benchfix.ModelWorkload(attrs, rows)

	var jbuf, bbuf bytes.Buffer
	if err := m.WriteJSON(&jbuf); err != nil {
		return "", "", err
	}
	if err := core.WriteSnapshot(&bbuf, m, core.SaveOptions{}); err != nil {
		return "", "", err
	}
	jraw, braw := jbuf.Bytes(), bbuf.Bytes()

	jr := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadModelJSON(bytes.NewReader(jraw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ReadSnapshot(bytes.NewReader(braw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	ld := &loadReport{
		ReadJSONNs:     float64(jr.T.Nanoseconds()) / float64(jr.N),
		ReadSnapshotNs: float64(br.T.Nanoseconds()) / float64(br.N),
		JSONBytes:      len(jraw),
		SnapshotBytes:  len(braw),
	}
	ld.Speedup = ld.ReadJSONNs / ld.ReadSnapshotNs
	rep.Load = ld
	fmt.Printf("model load: json %.2fms (%d bytes), snapshot %.2fms (%d bytes) -> %.1fx\n",
		ld.ReadJSONNs/1e6, ld.JSONBytes, ld.ReadSnapshotNs/1e6, ld.SnapshotBytes, ld.Speedup)

	dir, err := os.MkdirTemp("", "loadgen")
	if err != nil {
		return "", "", err
	}
	snapPath = filepath.Join(dir, "model.snap")
	if err := os.WriteFile(snapPath, braw, 0o644); err != nil {
		return "", "", err
	}

	regOpts := registry.Options{}
	if ctl != nil {
		regOpts.LoadHook = ctl.RecordLoad
	}
	reg := registry.New(regOpts)
	if _, err := reg.Load(name, m); err != nil {
		return "", "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", "", err
	}
	// Tracing on, as hypermined runs it by default. The low slow
	// threshold guarantees the cold rules mines land in the always-kept
	// ring, so -trace-sample has a span tree to show.
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SlowThreshold: time.Millisecond})
	go func() {
		_ = http.Serve(ln, server.New(reg,
			server.WithAdmission(ctl), server.WithTracer(tracer)).Handler())
	}()
	return "http://" + ln.Addr().String(), snapPath, nil
}

func fetchInfo(baseURL, model string) (*modelInfo, error) {
	resp, err := http.Get(baseURL + "/v1/models/" + model)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET /v1/models/%s: %d: %s", model, resp.StatusCode, raw)
	}
	var info modelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// query is one pre-generated request.
type query struct {
	endpoint string // mix key
	method   string
	url      string
	body     []byte
	identity int // >= 0: index into the identity table (classify pool)
}

// replay generates the deterministic mix and drives it serially,
// recording per-endpoint latencies and identity mismatches.
func replay(rep *report, baseURL, model string, info *modelInfo, n int, seed int64, reloads int, snapPath string, cancelEvery int, mixName string) error {
	rng := rand.New(rand.NewSource(seed))

	// Pool of 32 deterministic classify bodies; each remembers its
	// first response for byte-identity checking.
	const poolSize = 32
	type pooled struct {
		single []byte
		batch  []byte
	}
	pool := make([]pooled, poolSize)
	for i := range pool {
		values := map[string]int{}
		for _, a := range info.Dominator {
			values[a] = 1 + rng.Intn(info.K)
		}
		single, err := json.Marshal(map[string]any{
			"target": info.Targets[rng.Intn(len(info.Targets))],
			"values": values,
		})
		if err != nil {
			return err
		}
		batchRows := make([][]int, 8)
		for r := range batchRows {
			row := make([]int, len(info.Dominator))
			for j := range row {
				row[j] = 1 + rng.Intn(info.K)
			}
			batchRows[r] = row
		}
		batch, err := json.Marshal(map[string]any{
			"target": info.Targets[rng.Intn(len(info.Targets))],
			"rows":   batchRows,
		})
		if err != nil {
			return err
		}
		pool[i] = pooled{single: single, batch: batch}
	}

	// Weighted mix: classification dominates, as in a serving workload.
	type mixEntry struct {
		name   string
		weight int
		build  func(i int) query
	}
	var mix []mixEntry
	if mixName == "batch" {
		// One multiplexed typed batch per request, POSTed to :query:
		// three single classifies, one batch classify, a similarity
		// pair, a ranking, the dominator, and (on every 4th pool slot)
		// a rules query — the whole default mix in one round trip.
		// Bodies are deterministic and identity-checked like the
		// classify pool.
		batchPool := make([][]byte, poolSize)
		for i := range batchPool {
			var items []map[string]any
			for c := 0; c < 3; c++ {
				values := map[string]any{}
				for _, a := range info.Dominator {
					values[a] = 1 + rng.Intn(info.K)
				}
				items = append(items, map[string]any{"classify": map[string]any{
					"target": info.Targets[rng.Intn(len(info.Targets))],
					"values": values,
				}})
			}
			batchRows := make([][]int, 4)
			for r := range batchRows {
				row := make([]int, len(info.Dominator))
				for j := range row {
					row[j] = 1 + rng.Intn(info.K)
				}
				batchRows[r] = row
			}
			items = append(items,
				map[string]any{"classify": map[string]any{
					"target": info.Targets[rng.Intn(len(info.Targets))],
					"rows":   batchRows,
				}},
				map[string]any{"similar": map[string]any{
					"a": info.Dominator[i%len(info.Dominator)],
					"b": info.Dominator[(i+1)%len(info.Dominator)],
				}},
				map[string]any{"similar": map[string]any{
					"a":   info.Dominator[i%len(info.Dominator)],
					"top": 5,
				}},
				map[string]any{"dominators": map[string]any{}},
			)
			if i%4 == 0 {
				items = append(items, map[string]any{"rules": map[string]any{
					"head": info.Targets[i%len(info.Targets)],
					"top":  5,
				}})
			}
			body, err := json.Marshal(map[string]any{"batch": items})
			if err != nil {
				return err
			}
			batchPool[i] = body
		}
		mix = []mixEntry{
			{"query_batch", 1, func(i int) query {
				p := i % poolSize
				return query{"query_batch", http.MethodPost,
					baseURL + "/v1/models/" + model + ":query", batchPool[p], p}
			}},
		}
	} else {
		mix = []mixEntry{
			{"classify", 8, func(i int) query {
				p := i % poolSize
				return query{"classify", http.MethodPost,
					baseURL + "/v1/models/" + model + "/classify", pool[p].single, p}
			}},
			{"classify_batch", 2, func(i int) query {
				p := i % poolSize
				return query{"classify_batch", http.MethodPost,
					baseURL + "/v1/models/" + model + "/classify:batch", pool[p].batch, poolSize + p}
			}},
			{"similar", 2, func(i int) query {
				a := info.Dominator[i%len(info.Dominator)]
				return query{"similar", http.MethodGet,
					fmt.Sprintf("%s/v1/models/%s/similar?a=%s&top=5", baseURL, model, a), nil, -1}
			}},
			{"rules", 1, func(i int) query {
				head := info.Targets[i%len(info.Targets)]
				return query{"rules", http.MethodGet,
					fmt.Sprintf("%s/v1/models/%s/rules?head=%s&top=5", baseURL, model, head), nil, -1}
			}},
			{"dominators", 1, func(i int) query {
				return query{"dominators", http.MethodGet,
					baseURL + "/v1/models/" + model + "/dominators", nil, -1}
			}},
		}
	}
	totalWeight := 0
	for _, e := range mix {
		totalWeight += e.weight
	}
	queries := make([]query, n)
	for i := range queries {
		pick := rng.Intn(totalWeight)
		for _, e := range mix {
			if pick < e.weight {
				queries[i] = e.build(i)
				break
			}
			pick -= e.weight
		}
	}

	// Replay. Identity table: first response bytes per pooled body.
	identity := make([][]byte, 2*poolSize)
	latency := map[string][]int64{}
	client := &http.Client{}
	reloadEvery := 0
	if reloads > 0 {
		reloadEvery = n / (reloads + 1)
	}
	var cr *cancelReport
	if cancelEvery > 0 {
		cr = &cancelReport{Every: cancelEvery}
		rep.Cancel = cr
	}
	start := time.Now()
	for i, q := range queries {
		if reloadEvery > 0 && i > 0 && i%reloadEvery == 0 && rep.Reloads < reloads {
			if err := putSnapshot(client, baseURL, model, snapPath); err != nil {
				return fmt.Errorf("hot reload %d: %w", rep.Reloads+1, err)
			}
			rep.Reloads++
		}
		if cr != nil && i > 0 && i%cancelEvery == 0 {
			// Inject an abandoned client: a heavy rules query whose
			// client-side deadline expires mid-request. Its outcome is
			// counted, never identity-checked or latency-recorded.
			cr.Injected++
			url := fmt.Sprintf("%s/v1/models/%s/rules?head=%s&top=50",
				baseURL, model, info.Targets[i%len(info.Targets)])
			ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				cancel()
				return err
			}
			resp, err := client.Do(req)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) {
					cr.ClientTimeouts++
				}
			} else {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
			continue
		}
		t0 := time.Now()
		code, _, raw, err := sendWithBackoff(client, q.method, q.url, "", q.body)
		elapsed := time.Since(t0).Nanoseconds()
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("%s %s: %d: %s", q.method, q.url, code, raw)
		}
		latency[q.endpoint] = append(latency[q.endpoint], elapsed)
		if q.endpoint == "query_batch" && bytes.Contains(raw, []byte(`"error"`)) {
			return fmt.Errorf("batch response carries a sub-request error: %s", raw)
		}
		if q.identity >= 0 {
			if identity[q.identity] == nil {
				identity[q.identity] = raw
			} else if !bytes.Equal(identity[q.identity], raw) {
				rep.IdentityMismatches++
			}
		}
	}
	wall := time.Since(start)

	names := make([]string, 0, len(latency))
	for name := range latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := latency[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum int64
		for _, l := range ls {
			sum += l
		}
		er := endpointReport{
			Endpoint: name,
			Requests: len(ls),
			MeanNs:   float64(sum) / float64(len(ls)),
			P50Ns:    ls[len(ls)/2],
			P90Ns:    ls[len(ls)*90/100],
			P99Ns:    ls[len(ls)*99/100],
			MaxNs:    ls[len(ls)-1],
		}
		rep.Serve = append(rep.Serve, er)
		fmt.Printf("%-16s %6d reqs  mean %8.1fus  p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  max %8.1fus\n",
			name, er.Requests, er.MeanNs/1e3, float64(er.P50Ns)/1e3, float64(er.P90Ns)/1e3,
			float64(er.P99Ns)/1e3, float64(er.MaxNs)/1e3)
	}
	// QPS counts only requests actually served to completion: injected
	// abandoned clients are excluded so runs with and without
	// -cancel-every stay comparable across the BENCH trajectory.
	served := n
	if cr != nil {
		served -= cr.Injected
	}
	rep.Total.Requests = served
	rep.Total.WallNs = wall.Nanoseconds()
	rep.Total.QPS = float64(served) / wall.Seconds()
	fmt.Printf("total: %d requests in %s (%.0f qps), %d hot reloads, %d identity mismatches\n",
		served, wall.Round(time.Millisecond), rep.Total.QPS, rep.Reloads, rep.IdentityMismatches)
	if cr != nil {
		// Survival check: after the abort burst the server must still
		// answer both the liveness probe and a real query, and /stats
		// reports how many aborts it observed.
		healthOK := false
		if resp, err := http.Get(baseURL + "/healthz"); err == nil {
			healthOK = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
		queryOK := false
		if resp, err := http.Get(baseURL + "/v1/models/" + model); err == nil {
			queryOK = resp.StatusCode == http.StatusOK
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cr.SurvivedBurst = healthOK && queryOK
		var stats struct {
			Timeouts int64 `json:"timeouts"`
			Canceled int64 `json:"canceled"`
		}
		if resp, err := http.Get(baseURL + "/stats"); err == nil {
			if resp.StatusCode == http.StatusOK {
				_ = json.NewDecoder(resp.Body).Decode(&stats)
			}
			resp.Body.Close()
		}
		cr.ServerCanceled, cr.ServerTimeouts = stats.Canceled, stats.Timeouts
		fmt.Printf("cancel scenario: %d injected, %d client timeouts, server observed %d canceled + %d timed out, survived=%v\n",
			cr.Injected, cr.ClientTimeouts, cr.ServerCanceled, cr.ServerTimeouts, cr.SurvivedBurst)
		if !cr.SurvivedBurst {
			return errors.New("server did not survive the cancellation burst")
		}
	}
	return nil
}

// runOverload drives the fault-injecting overload scenario: a
// deterministic concurrency ramp past gate capacity, slow-client
// stalls, and mid-run hot reloads, with per-response invariants —
// admitted answers byte-identical to the unloaded baseline, rejections
// carrying the correct status and Retry-After.
func runOverload(rep *report, baseURL, model string, info *modelInfo, n int, seed int64, reloads int, snapPath string) error {
	rng := rand.New(rand.NewSource(seed))

	// Deterministic request pool: classify singles (cheap class), the
	// dominator read (cheap), and a few rules queries (expensive). The
	// pool is small so every request replays many times and any drift
	// is caught.
	const poolSize = 32
	type oq struct {
		method, url string
		body        []byte
		key         int
	}
	var pool []oq
	for i := 0; i < poolSize; i++ {
		values := map[string]int{}
		for _, a := range info.Dominator {
			values[a] = 1 + rng.Intn(info.K)
		}
		body, err := json.Marshal(map[string]any{
			"target": info.Targets[rng.Intn(len(info.Targets))],
			"values": values,
		})
		if err != nil {
			return err
		}
		pool = append(pool, oq{http.MethodPost, baseURL + "/v1/models/" + model + "/classify", body, i})
	}
	pool = append(pool, oq{http.MethodGet, baseURL + "/v1/models/" + model + "/dominators", nil, poolSize})
	for i := 0; i < 4 && i < len(info.Targets); i++ {
		pool = append(pool, oq{http.MethodGet,
			fmt.Sprintf("%s/v1/models/%s/rules?head=%s&top=5", baseURL, model, info.Targets[i]),
			nil, poolSize + 1 + i})
	}

	// Unloaded serial baseline: one clean pass over the pool. This also
	// warms every lazy artifact, so admitted overload answers have no
	// first-build variance to hide behind.
	client := &http.Client{}
	baseline := make([][]byte, poolSize+1+4)
	for _, q := range pool {
		code, raw, _, err := doOnce(client, q.method, q.url, q.body)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("baseline %s: %d: %s", q.url, code, raw)
		}
		baseline[q.key] = raw
	}

	ov := &overloadReport{Gates: "cheap=2/4 expensive=1/2 (self-hosted defaults)"}
	rep.Overload = ov
	waves := []int{2, 4, 8, 16, 32}
	perWave := n / len(waves)
	if perWave < len(pool) {
		perWave = len(pool)
	}

	var mismatches, badRej atomic.Int64
	var stimSeq atomic.Int64
	healthzOK := true
	for wi, conc := range waves {
		// Hot reload between waves (self-hosted): the invariants must
		// hold across generations — the rebuilt artifacts answer
		// byte-identically.
		if snapPath != "" && wi > 0 && ov.Reloads < reloads {
			if err := putSnapshot(client, baseURL, model, snapPath); err != nil {
				return fmt.Errorf("hot reload: %w", err)
			}
			ov.Reloads++
		}

		// Slow clients: half-open connections that send an incomplete
		// request and stall for the whole wave. They hold no gate slot
		// (the handler never starts) and must not block the accept
		// loop — the concurrent healthz probes below prove the server
		// keeps serving around them.
		stop, stalls := startStalls(baseURL, conc/8)
		ov.StallConns += stalls

		var admitted, shed atomic.Int64
		// check applies the per-response invariants; identityKey < 0
		// skips the byte-identity comparison (stimulus queries are
		// unique by construction and have no baseline).
		check := func(code int, raw []byte, retry string, identityKey int, err error) {
			if err != nil {
				badRej.Add(1)
				fmt.Fprintf(os.Stderr, "overload: transport error: %v\n", err)
				return
			}
			switch {
			case code == http.StatusOK:
				admitted.Add(1)
				if identityKey >= 0 && !bytes.Equal(raw, baseline[identityKey]) {
					mismatches.Add(1)
				}
			case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
				shed.Add(1)
				if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
					badRej.Add(1)
					fmt.Fprintf(os.Stderr, "overload: %d rejection with Retry-After %q\n", code, retry)
				}
			default:
				badRej.Add(1)
				fmt.Fprintf(os.Stderr, "overload: unexpected %d: %.120s\n", code, raw)
			}
		}

		// Half the wave mines: every stimulus query uses a fresh `top`,
		// which is part of the rule-cache key, so each one is a real
		// MineRules run that holds the expensive gate slot (capacity 1)
		// for many milliseconds. The other half replays the pooled warm
		// requests with identity checks. Even on one CPU the miners
		// overlap the gate — async preemption schedules the other
		// workers' Enter calls mid-mine — so the upper rungs of the
		// ramp are guaranteed past capacity + queue.
		stimWorkers := conc / 2
		if stimWorkers < 1 {
			stimWorkers = 1
		}
		var wg sync.WaitGroup
		for w := 0; w < stimWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < 3; r++ {
					seq := stimSeq.Add(1)
					url := fmt.Sprintf("%s/v1/models/%s/rules?head=%s&top=%d",
						baseURL, model, info.Targets[int(seq)%len(info.Targets)], 11+seq)
					code, raw, retry, err := doOnce(client, http.MethodGet, url, nil)
					check(code, raw, retry, -1, err)
				}
			}()
		}
		var next atomic.Int64
		for w := stimWorkers; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= perWave {
						return
					}
					q := pool[(i*7+wi)%len(pool)]
					code, raw, retry, err := doOnce(client, q.method, q.url, q.body)
					check(code, raw, retry, q.key, err)
				}
			}()
		}
		// Liveness during saturation: the probe must answer while the
		// workers and stalled connections lean on the server.
		probeDone := make(chan struct{})
		go func() {
			defer close(probeDone)
			for j := 0; j < 3; j++ {
				resp, err := client.Get(baseURL + "/healthz")
				if err != nil || resp.StatusCode != http.StatusOK {
					healthzOK = false
				}
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
		wg.Wait()
		<-probeDone
		stop()

		wave := waveReport{
			Concurrency: conc,
			Requests:    perWave + stimWorkers*3,
			Admitted:    int(admitted.Load()),
			Shed:        int(shed.Load()),
		}
		ov.Waves = append(ov.Waves, wave)
		ov.Admitted += wave.Admitted
		ov.Shed += wave.Shed
		fmt.Printf("wave c=%-3d %5d reqs: %5d admitted, %5d shed (%d stalled conns)\n",
			conc, wave.Requests, wave.Admitted, wave.Shed, stalls)
	}
	ov.HealthzDuringOK = healthzOK
	ov.BadRejections = int(badRej.Load())
	rep.IdentityMismatches += int(mismatches.Load())
	rep.Reloads += ov.Reloads
	rep.Total.Requests = ov.Admitted + ov.Shed

	// The server's own accounting must have seen the shedding.
	var stats struct {
		Shed int64 `json:"shed"`
	}
	if resp, err := client.Get(baseURL + "/stats"); err == nil {
		if resp.StatusCode == http.StatusOK {
			_ = json.NewDecoder(resp.Body).Decode(&stats)
		}
		resp.Body.Close()
	}
	ov.ServerShed = stats.Shed

	fmt.Printf("overload: %d admitted, %d shed, %d bad rejections, %d identity mismatches, healthz_ok=%v, server shed counter=%d\n",
		ov.Admitted, ov.Shed, ov.BadRejections, rep.IdentityMismatches, ov.HealthzDuringOK, ov.ServerShed)
	switch {
	case ov.BadRejections > 0:
		return fmt.Errorf("%d rejections violated the 429/503 + Retry-After contract", ov.BadRejections)
	case ov.Shed == 0:
		return errors.New("overload ramp never shed — gates larger than the ramp, nothing was proven")
	case !ov.HealthzDuringOK:
		return errors.New("healthz failed during saturation")
	case ov.ServerShed < int64(ov.Shed):
		return fmt.Errorf("server shed counter %d < observed rejections %d", ov.ServerShed, ov.Shed)
	}
	return nil
}

// churnOnce issues one request (honoring Retry-After like every
// non-overload path) and returns status, body, and the
// X-Model-Generation header.
func churnOnce(client *http.Client, method, url string, body []byte) (int, []byte, string, error) {
	code, hdr, raw, err := sendWithBackoff(client, method, url, "", body)
	if err != nil {
		return 0, nil, "", err
	}
	return code, raw, hdr.Get("X-Model-Generation"), nil
}

// fetchGen reads the serving generation from the model detail header.
func fetchGen(client *http.Client, baseURL, model string) (int64, error) {
	code, _, gen, err := churnOnce(client, http.MethodGet, baseURL+"/v1/models/"+model, nil)
	if err != nil {
		return 0, err
	}
	if code != http.StatusOK {
		return 0, fmt.Errorf("GET /v1/models/%s: %d", model, code)
	}
	return strconv.ParseInt(gen, 10, 64)
}

// runChurn interleaves :append republishes with concurrent query
// workers and verifies that every response is attributable to a
// coherent generation: per-(query, generation) byte identity, no
// response older than the latest acknowledged append, and per-worker
// generation monotonicity.
func runChurn(rep *report, baseURL, model string, info *modelInfo, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	client := &http.Client{}

	// Deterministic query pool: classify singles plus the two
	// graph-shaped reads. Every entry is repeated many times at every
	// generation, so per-generation drift cannot hide.
	const classifyPool = 32
	type cq struct {
		endpoint, method, url string
		body                  []byte
		key                   int
	}
	var pool []cq
	for i := 0; i < classifyPool; i++ {
		values := map[string]int{}
		for _, a := range info.Dominator {
			values[a] = 1 + rng.Intn(info.K)
		}
		body, err := json.Marshal(map[string]any{
			"target": info.Targets[rng.Intn(len(info.Targets))],
			"values": values,
		})
		if err != nil {
			return err
		}
		pool = append(pool, cq{"classify", http.MethodPost,
			baseURL + "/v1/models/" + model + "/classify", body, i})
	}
	pool = append(pool, cq{"dominators", http.MethodGet,
		baseURL + "/v1/models/" + model + "/dominators", nil, classifyPool})
	for i := 0; i < 4 && i < len(info.Dominator); i++ {
		pool = append(pool, cq{"similar", http.MethodGet,
			fmt.Sprintf("%s/v1/models/%s/similar?a=%s&top=5", baseURL, model, info.Dominator[i]),
			nil, classifyPool + 1 + i})
	}

	// Deterministic append schedule: batch sizes cycle small-to-larger,
	// each batch fired after a fixed number of completed queries, so the
	// interleaving structure is reproducible run to run.
	const appends = 8
	sizes := [...]int{1, 5, 10, 25}
	batches := make([][][]int, appends)
	totalAppended := 0
	for s := range batches {
		batch := make([][]int, sizes[s%len(sizes)])
		for i := range batch {
			row := make([]int, info.Attrs)
			base := 1 + rng.Intn(info.K)
			for j := range row {
				if rng.Intn(3) == 0 {
					row[j] = 1 + rng.Intn(info.K)
				} else {
					row[j] = base
				}
			}
			batch[i] = row
		}
		batches[s] = batch
		totalAppended += len(batch)
	}
	perStep := n / (appends + 1)
	if perStep < 1 {
		perStep = 1
	}

	initialGen, err := fetchGen(client, baseURL, model)
	if err != nil {
		return err
	}
	ch := &churnReport{}
	rep.Churn = ch

	var (
		curGen    atomic.Int64 // newest generation acknowledged by an append response
		completed atomic.Int64
		stale     atomic.Int64
		missing   atomic.Int64
		nonMono   atomic.Int64
		mu        sync.Mutex // guards identity, gens, latency
		identity  = map[string][]byte{}
		gens      = map[int64]struct{}{}
		latency   = map[string][]int64{}
	)
	curGen.Store(initialGen)
	stop := make(chan struct{})
	errs := make(chan error, 8)
	start := time.Now()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lastSeen := int64(0)
			for i := w; ; i += workers {
				select {
				case <-stop:
					return
				default:
				}
				q := pool[i%len(pool)]
				genBefore := curGen.Load()
				t0 := time.Now()
				code, raw, genHdr, err := churnOnce(client, q.method, q.url, q.body)
				elapsed := time.Since(t0).Nanoseconds()
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s %s: %d: %.200s", q.method, q.url, code, raw)
					return
				}
				g, perr := strconv.ParseInt(genHdr, 10, 64)
				if genHdr == "" || perr != nil {
					missing.Add(1)
				} else {
					if g < genBefore {
						stale.Add(1)
					}
					if g < lastSeen {
						nonMono.Add(1)
					}
					lastSeen = g
					mu.Lock()
					gens[g] = struct{}{}
					ikey := fmt.Sprintf("%d@%d", q.key, g)
					if prev, ok := identity[ikey]; !ok {
						identity[ikey] = raw
					} else if !bytes.Equal(prev, raw) {
						rep.IdentityMismatches++
					}
					latency[q.endpoint] = append(latency[q.endpoint], elapsed)
					mu.Unlock()
				}
				completed.Add(1)
			}
		}(w)
	}

	// The driver: fire each append once the workers have completed its
	// scheduled share of queries, so appends land mid-traffic.
	appendURL := baseURL + "/v1/models/" + model + ":append"
	for s, batch := range batches {
		target := int64((s + 1) * perStep)
		for completed.Load() < target {
			select {
			case err := <-errs:
				close(stop)
				wg.Wait()
				return err
			default:
			}
			time.Sleep(time.Millisecond)
		}
		body, err := json.Marshal(map[string]any{"rows": batch})
		if err != nil {
			close(stop)
			wg.Wait()
			return err
		}
		var ar struct {
			Generation int64 `json:"generation"`
			Swapped    bool  `json:"swapped"`
			Rows       int   `json:"rows"`
		}
		// Retry shed appends (remote servers may run admission control);
		// the schedule is still deterministic in structure.
		for attempt := 0; ; attempt++ {
			code, raw, _, err := churnOnce(client, http.MethodPost, appendURL, body)
			if err != nil {
				close(stop)
				wg.Wait()
				return err
			}
			if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
				if attempt > 20 {
					close(stop)
					wg.Wait()
					return fmt.Errorf("append shed %d times: %s", attempt, raw)
				}
				time.Sleep(50 * time.Millisecond)
				continue
			}
			if code != http.StatusOK {
				close(stop)
				wg.Wait()
				return fmt.Errorf("append %d: %d: %s", s, code, raw)
			}
			if err := json.Unmarshal(raw, &ar); err != nil {
				close(stop)
				wg.Wait()
				return err
			}
			break
		}
		if !ar.Swapped || ar.Generation != curGen.Load()+1 {
			close(stop)
			wg.Wait()
			return fmt.Errorf("append %d published generation %d (swapped=%v), want %d",
				s, ar.Generation, ar.Swapped, curGen.Load()+1)
		}
		curGen.Store(ar.Generation)
		ch.Appends++
		ch.AppendedRows += len(batch)
	}
	for completed.Load() < int64(n) {
		select {
		case err := <-errs:
			close(stop)
			wg.Wait()
			return err
		default:
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	ch.Queries = int(completed.Load())
	ch.StaleResponses = int(stale.Load())
	ch.MissingGenHeaders = int(missing.Load())
	ch.NonMonotonic = int(nonMono.Load())
	ch.Generations = len(gens)
	ch.FinalGeneration = curGen.Load()

	finalInfo, err := fetchInfo(baseURL, model)
	if err != nil {
		return err
	}
	ch.FinalRows = finalInfo.Rows

	names := make([]string, 0, len(latency))
	for name := range latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := latency[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum int64
		for _, l := range ls {
			sum += l
		}
		rep.Serve = append(rep.Serve, endpointReport{
			Endpoint: name, Requests: len(ls),
			MeanNs: float64(sum) / float64(len(ls)),
			P50Ns:  ls[len(ls)/2], P90Ns: ls[len(ls)*90/100],
			P99Ns: ls[len(ls)*99/100], MaxNs: ls[len(ls)-1],
		})
	}
	rep.Total.Requests = ch.Queries
	rep.Total.WallNs = wall.Nanoseconds()
	rep.Total.QPS = float64(ch.Queries) / wall.Seconds()

	fmt.Printf("churn: %d appends (%d rows) across %d queries; generations %d -> %d (%d observed); %d stale, %d missing headers, %d non-monotonic, %d identity mismatches\n",
		ch.Appends, ch.AppendedRows, ch.Queries, initialGen, ch.FinalGeneration,
		ch.Generations, ch.StaleResponses, ch.MissingGenHeaders, ch.NonMonotonic, rep.IdentityMismatches)

	switch {
	case ch.FinalGeneration != initialGen+int64(ch.Appends):
		return fmt.Errorf("final generation %d, want %d (initial %d + %d appends)",
			ch.FinalGeneration, initialGen+int64(ch.Appends), initialGen, ch.Appends)
	case ch.FinalRows != info.Rows+ch.AppendedRows:
		return fmt.Errorf("final rows %d, want %d (initial %d + %d appended)",
			ch.FinalRows, info.Rows+ch.AppendedRows, info.Rows, ch.AppendedRows)
	case ch.MissingGenHeaders > 0:
		return fmt.Errorf("%d responses missing X-Model-Generation", ch.MissingGenHeaders)
	case ch.StaleResponses > 0:
		return fmt.Errorf("%d responses answered from a generation older than an acknowledged append", ch.StaleResponses)
	case ch.NonMonotonic > 0:
		return fmt.Errorf("%d per-worker generation regressions", ch.NonMonotonic)
	}
	return nil
}

// Bounded Retry-After backoff: every mix except overload honors a
// 429/503's Retry-After hint and retries, so transient shedding (or a
// fleet replica mid-restart) does not fail a run. The overload mix is
// the documented exception — it measures the shedding contract itself
// and must observe rejections raw (see doOnce).
const (
	maxBackoffRetries = 5
	backoffCap        = 2 * time.Second
)

// backoffWaits counts honored Retry-After waits across all request
// paths (package-level, like the trace tallies).
var backoffWaits atomic.Int64

// sendWithBackoff issues one request, honoring Retry-After on 429/503
// with bounded backoff (at most maxBackoffRetries retries, each wait
// capped at backoffCap). The final response's status, headers, and
// fully-read body are returned; the trace tally sees every attempt.
func sendWithBackoff(client *http.Client, method, url, contentType string, body []byte) (int, http.Header, []byte, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return 0, nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, nil, nil, err
		}
		noteTraceID(resp.Header)
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, nil, nil, err
		}
		retriable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retriable || attempt >= maxBackoffRetries {
			return resp.StatusCode, resp.Header, raw, nil
		}
		wait := backoffCap
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs >= 0 {
			if d := time.Duration(secs) * time.Second; d < wait {
				wait = d
			}
		}
		backoffWaits.Add(1)
		time.Sleep(wait)
	}
}

// doOnce issues one request and returns status, body, and Retry-After.
// It deliberately does NOT back off: the overload mix uses it to
// observe and verify rejections.
func doOnce(client *http.Client, method, url string, body []byte) (int, []byte, string, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	noteTraceID(resp.Header)
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, resp.Header.Get("Retry-After"), err
}

// startStalls opens nConns raw connections that send an incomplete
// request and then go silent — the classic slow client. The returned
// stop func closes them.
func startStalls(baseURL string, nConns int) (func(), int) {
	host := strings.TrimPrefix(baseURL, "http://")
	var conns []net.Conn
	for i := 0; i < nConns; i++ {
		c, err := net.DialTimeout("tcp", host, time.Second)
		if err != nil {
			continue
		}
		// Headers without the terminating blank line: the server's
		// reader waits for the rest of the request forever (or until
		// close below).
		fmt.Fprintf(c, "GET /healthz HTTP/1.1\r\nHost: %s\r\nX-Stall: 1\r\n", host)
		conns = append(conns, c)
	}
	return func() {
		for _, c := range conns {
			c.Close()
		}
	}, len(conns)
}

// putSnapshot hot-reloads the model from the saved snapshot file
// (honoring Retry-After — a fleet node mid-restart answers 503 with a
// hint until gossip converges).
func putSnapshot(client *http.Client, baseURL, model, snapPath string) error {
	snap, err := os.ReadFile(snapPath)
	if err != nil {
		return err
	}
	code, _, raw, err := sendWithBackoff(client, http.MethodPut,
		baseURL+"/v1/models/"+model, "application/octet-stream", snap)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("PUT: %d: %s", code, raw)
	}
	return nil
}

// startFleet boots the in-process 3-node fleet (R=2) the fleet mix
// drives, publishes the model through the router, and returns the
// cluster, the router URL, and the snapshot path for later re-PUTs.
func startFleet(rep *report, model string, attrs, rows int) (*sim.Cluster, string, string, error) {
	fmt.Printf("building %dx%d serving model and booting 3-node fleet (R=2)...\n", rows, attrs)
	m := benchfix.ModelWorkload(attrs, rows)
	var snap bytes.Buffer
	if err := core.WriteSnapshot(&snap, m, core.SaveOptions{}); err != nil {
		return nil, "", "", err
	}
	dir, err := os.MkdirTemp("", "loadgen-fleet")
	if err != nil {
		return nil, "", "", err
	}
	snapPath := filepath.Join(dir, "model.snap")
	if err := os.WriteFile(snapPath, snap.Bytes(), 0o644); err != nil {
		return nil, "", "", err
	}

	cluster, err := sim.NewCluster(3, 2, 0)
	if err != nil {
		return nil, "", "", err
	}
	if err := cluster.Converge(context.Background()); err != nil {
		cluster.Close()
		return nil, "", "", err
	}
	if err := putSnapshot(cluster.Client, cluster.RouterURL(), model, snapPath); err != nil {
		cluster.Close()
		return nil, "", "", fmt.Errorf("publish through router: %w", err)
	}
	return cluster, cluster.RouterURL(), snapPath, nil
}

// runFleet drives the default query mix through the fleet router while
// the schedule kills the model's primary owner, writes around the
// outage, and restarts it: at n/3 a snapshot PUT goes through the
// router with the fleet healthy, at n/2 the primary owner is killed,
// at 2n/3 another PUT exercises write failover, and at 5n/6 the victim
// restarts and gossip converges. Every routed answer must be 200,
// byte-identical per pooled body, and carry X-Model-Generation; at the
// end all owners must agree on the generation and every node must be
// ready.
func runFleet(rep *report, cluster *sim.Cluster, baseURL, model string, info *modelInfo, n int, seed int64, snapPath string) error {
	rng := rand.New(rand.NewSource(seed))
	client := cluster.Client
	owners := cluster.Ring().Owners(model)
	if len(owners) < 2 {
		return fmt.Errorf("model %q has replica set %v, want 2 owners", model, owners)
	}
	victim := owners[0]
	fr := &fleetReport{Nodes: len(cluster.NodeNames()), Replicas: 2, Victim: victim}
	rep.Fleet = fr

	const poolSize = 16
	pool := make([][]byte, poolSize)
	for i := range pool {
		values := map[string]int{}
		for _, a := range info.Dominator {
			values[a] = 1 + rng.Intn(info.K)
		}
		body, err := json.Marshal(map[string]any{
			"target": info.Targets[rng.Intn(len(info.Targets))],
			"values": values,
		})
		if err != nil {
			return err
		}
		pool[i] = body
	}
	identity := make([][]byte, poolSize)
	latency := map[string][]int64{}

	reload := func(label string) error {
		if err := putSnapshot(client, baseURL, model, snapPath); err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		fr.WritesThroughRouter++
		rep.Reloads++
		return nil
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		switch i {
		case n / 3:
			if err := reload("routed PUT, fleet healthy"); err != nil {
				return err
			}
		case n / 2:
			fmt.Printf("killing primary owner %s at request %d\n", victim, i)
			if err := cluster.Kill(victim); err != nil {
				return err
			}
			fr.Kills++
		case 2 * n / 3:
			if err := reload("routed PUT during outage (write failover)"); err != nil {
				return err
			}
		case 5 * n / 6:
			fmt.Printf("restarting %s at request %d\n", victim, i)
			if err := cluster.Restart(victim); err != nil {
				return err
			}
			if err := cluster.Converge(context.Background()); err != nil {
				return err
			}
			fr.Restarts++
		}

		var q query
		switch pick := rng.Intn(12); {
		case pick < 8:
			p := rng.Intn(poolSize)
			q = query{"classify", http.MethodPost,
				baseURL + "/v1/models/" + model + "/classify", pool[p], p}
		case pick < 10:
			a := info.Dominator[i%len(info.Dominator)]
			q = query{"similar", http.MethodGet,
				fmt.Sprintf("%s/v1/models/%s/similar?a=%s&top=5", baseURL, model, a), nil, -1}
		case pick < 11:
			head := info.Targets[i%len(info.Targets)]
			q = query{"rules", http.MethodGet,
				fmt.Sprintf("%s/v1/models/%s/rules?head=%s&top=5", baseURL, model, head), nil, -1}
		default:
			q = query{"dominators", http.MethodGet,
				baseURL + "/v1/models/" + model + "/dominators", nil, -1}
		}
		t0 := time.Now()
		code, hdr, raw, err := sendWithBackoff(client, q.method, q.url, "application/json", q.body)
		elapsed := time.Since(t0).Nanoseconds()
		if err != nil {
			return fmt.Errorf("%s %s: %w", q.method, q.url, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("%s %s: %d: %s", q.method, q.url, code, raw)
		}
		latency[q.endpoint] = append(latency[q.endpoint], elapsed)
		if hdr.Get("X-Model-Generation") == "" {
			fr.MissingGenHeaders++
		}
		if q.identity >= 0 {
			if identity[q.identity] == nil {
				identity[q.identity] = raw
			} else if !bytes.Equal(identity[q.identity], raw) {
				rep.IdentityMismatches++
			}
		}
	}
	wall := time.Since(start)

	names := make([]string, 0, len(latency))
	for name := range latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := latency[name]
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		var sum int64
		for _, l := range ls {
			sum += l
		}
		er := endpointReport{
			Endpoint: name,
			Requests: len(ls),
			MeanNs:   float64(sum) / float64(len(ls)),
			P50Ns:    ls[len(ls)/2],
			P90Ns:    ls[len(ls)*90/100],
			P99Ns:    ls[len(ls)*99/100],
			MaxNs:    ls[len(ls)-1],
		}
		rep.Serve = append(rep.Serve, er)
		fmt.Printf("%-16s %6d reqs  mean %8.1fus  p50 %8.1fus  p90 %8.1fus  p99 %8.1fus  max %8.1fus\n",
			name, er.Requests, er.MeanNs/1e3, float64(er.P50Ns)/1e3, float64(er.P90Ns)/1e3,
			float64(er.P99Ns)/1e3, float64(er.MaxNs)/1e3)
	}
	rep.Total.Requests = n
	rep.Total.WallNs = wall.Nanoseconds()
	rep.Total.QPS = float64(n) / wall.Seconds()

	// Final checks: readiness everywhere, generation agreement across
	// the replica set, and the router must actually have failed over.
	fr.ReadyAfterRestart = true
	for _, name := range cluster.NodeNames() {
		code, _, _, err := sendWithBackoff(client, http.MethodGet, cluster.NodeURL(name)+"/readyz", "", nil)
		if err != nil || code != http.StatusOK {
			fr.ReadyAfterRestart = false
		}
	}
	fr.GenerationAgreed = true
	for _, o := range owners {
		code, _, raw, err := sendWithBackoff(client, http.MethodGet,
			cluster.NodeURL(o)+"/v1/models/"+model, "", nil)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("final check on %s: %v (%d)", o, err, code)
		}
		var detail struct {
			Generation int64 `json:"generation"`
		}
		if err := json.Unmarshal(raw, &detail); err != nil {
			return err
		}
		if fr.FinalGeneration == 0 {
			fr.FinalGeneration = detail.Generation
		} else if detail.Generation != fr.FinalGeneration {
			fr.GenerationAgreed = false
		}
	}
	var stats struct {
		Forwards  int64 `json:"forwards"`
		Failovers int64 `json:"failovers"`
	}
	if code, _, raw, err := sendWithBackoff(client, http.MethodGet, baseURL+"/stats", "", nil); err == nil && code == http.StatusOK {
		_ = json.Unmarshal(raw, &stats)
	}
	fr.RouterForwards, fr.RouterFailovers = stats.Forwards, stats.Failovers

	fmt.Printf("fleet: %d nodes R=%d, victim %s: %d kills, %d restarts, %d routed writes, %d forwards, %d failovers, generation %d agreed=%v ready=%v\n",
		fr.Nodes, fr.Replicas, victim, fr.Kills, fr.Restarts, fr.WritesThroughRouter,
		fr.RouterForwards, fr.RouterFailovers, fr.FinalGeneration, fr.GenerationAgreed, fr.ReadyAfterRestart)

	switch {
	case fr.Kills == 0 || fr.Restarts == 0:
		return errors.New("fleet schedule did not run (n too small for the kill/restart points)")
	case fr.RouterFailovers == 0:
		return errors.New("router reported no failovers despite a dead primary")
	case fr.MissingGenHeaders > 0:
		return fmt.Errorf("%d routed responses missing X-Model-Generation", fr.MissingGenHeaders)
	case !fr.GenerationAgreed:
		return errors.New("replica set disagrees on the final generation after convergence")
	case !fr.ReadyAfterRestart:
		return errors.New("a node failed /readyz after restart and convergence")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
