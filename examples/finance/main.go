// Finance: the full Chapter 5 pipeline on a synthetic S&P-style
// universe — discretization, association hypergraph, weighted degrees,
// similarity clusters, leading indicators, and out-of-sample
// prediction of financial time-series values.
package main

import (
	"fmt"
	"log"
	"sort"

	"hypermine"
)

func main() {
	gen := hypermine.DefaultGenConfig()
	gen.NumSeries = 60
	gen.NumDays = 1200
	u, err := hypermine.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("universe: %d series x %d days across %d sectors\n",
		len(u.Series), u.Days(), len(hypermine.DefaultTaxonomy()))

	// Split: last ~15% of days is the out-sample year.
	cut := u.Days() * 85 / 100
	inU, _ := u.Window(0, cut)
	outU, _ := u.Window(cut, u.Days())

	// §5.1.1 discretization + C1 model.
	trainTb, disc, err := inU.BuildTable(3)
	if err != nil {
		log.Fatal(err)
	}
	testTb, err := disc.Apply(outU)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hypermine.Build(trainTb, hypermine.C1())
	if err != nil {
		log.Fatal(err)
	}
	st := model.H.EdgeStats()
	fmt.Printf("C1 hypergraph: %d directed edges (mean ACV %.3f), %d 2-to-1 (mean ACV %.3f)\n",
		st.DirectedEdges, st.MeanACVEdges, st.TwoToOne, st.MeanACVTwoToOne)

	// Most predictable series (highest weighted in-degree, §5.2).
	type deg struct {
		name string
		in   float64
	}
	var degs []deg
	for v := 0; v < model.H.NumVertices(); v++ {
		degs = append(degs, deg{model.H.VertexName(v), model.H.WeightedInDegree(v)})
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i].in > degs[j].in })
	fmt.Printf("most predictable series: %s (weighted in-degree %.2f)\n", degs[0].name, degs[0].in)

	// Clusters of similar series (§5.3.2).
	all := make([]int, model.H.NumVertices())
	for i := range all {
		all[i] = i
	}
	g, err := hypermine.BuildSimilarityGraph(model.H, all)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := hypermine.TClustering(len(all), 12, g.Dist, 0)
	if err != nil {
		log.Fatal(err)
	}
	labels := make([]string, len(u.Series))
	for i, s := range u.Series {
		labels[i] = s.Sector
	}
	purity, _ := hypermine.SectorPurity(cl, labels)
	fmt.Printf("t-clustering (t=12): mean diameter %.3f, sector purity %.2f\n",
		cl.MeanDiameter(g.Dist), purity)

	// Leading indicators (§5.4) on the top-40% edges.
	th, err := model.H.TopFractionThreshold(0.40)
	if err != nil {
		log.Fatal(err)
	}
	strong := model.H.FilterByWeight(th)
	dom, err := hypermine.LeadingIndicators(strong, nil, hypermine.DominatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leading indicator: %d series covering %.0f%% —",
		len(dom.DomSet), 100*dom.CoverageFraction())
	for _, v := range dom.DomSet {
		fmt.Printf(" %s", model.H.VertexName(v))
	}
	fmt.Println()

	// Out-of-sample prediction of every covered non-dominator series.
	inDom := map[int]bool{}
	for _, v := range dom.DomSet {
		inDom[v] = true
	}
	var targets []int
	for v, cov := range dom.Covered {
		if cov && !inDom[v] {
			targets = append(targets, v)
		}
	}
	if len(targets) == 0 {
		log.Fatal("dominator covers nothing beyond itself")
	}
	abc, err := hypermine.NewClassifier(model, dom.DomSet, targets)
	if err != nil {
		log.Fatal(err)
	}
	inConf, err := abc.Evaluate(trainTb)
	if err != nil {
		log.Fatal(err)
	}
	outConf, err := abc.Evaluate(testTb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("association-based classifier over %d targets: in-sample %.3f, out-sample %.3f (chance %.3f)\n",
		len(targets), hypermine.MeanConfidence(inConf), hypermine.MeanConfidence(outConf), 1.0/3.0)
}
