// Patient database (medicine domain, Tables 3.1/3.2): discretize raw
// clinical measurements with the paper's floor(a/10) rule, inspect an
// association table, and read off the blood-pressure rule of
// Example 3.3.
package main

import (
	"fmt"
	"log"

	"hypermine"
)

func main() {
	// Raw values of Table 3.1 (age, cholesterol, blood-pressure,
	// heart-rate for eight patients).
	raw := [][]float64{
		{25, 62, 32, 12, 38, 39, 41, 85},         // Age
		{105, 160, 125, 95, 129, 121, 134, 125},  // Cholesterol
		{135, 165, 139, 105, 135, 117, 145, 155}, // Blood-Pressure
		{75, 85, 71, 67, 75, 71, 73, 78},         // Heart-Rate
	}
	attrs := []string{"Age", "Chol", "BP", "HR"}

	// The paper discretizes with floor(a/10). DiscretizeMapped also
	// renumbers codes densely onto 1..k.
	cols := make([][]hypermine.Value, len(raw))
	maxK := 0
	for j, col := range raw {
		vals, k, err := hypermine.DiscretizeMapped(col, func(v float64) int { return int(v / 10) })
		if err != nil {
			log.Fatal(err)
		}
		cols[j] = vals
		if k > maxK {
			maxK = k
		}
	}
	tb, err := hypermine.TableFromColumns(attrs, maxK, cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discretized patient database: %d observations, k=%d\n", tb.NumRows(), tb.K())

	// Example 3.3's rule, in the dense renumbering: age code for 3x
	// and cholesterol code for 12x imply the BP code for 13x.
	age3 := cols[0][2] // patient 3 has age 32 -> decade 3
	ch12 := cols[1][2] // cholesterol 125 -> decade 12
	bp13 := cols[2][2] // blood pressure 139 -> decade 13
	x := []hypermine.Item{{Attr: 0, Val: age3}, {Attr: 1, Val: ch12}}
	rule := hypermine.Rule{X: x, Y: []hypermine.Item{{Attr: 2, Val: bp13}}}
	fmt.Printf("Supp(age in 30s, chol in 120s)       = %.3f (paper: 0.375)\n", hypermine.Support(tb, x))
	fmt.Printf("Conf(... => blood pressure in 130s)  = %.3f (paper: 0.667)\n", hypermine.Confidence(tb, rule))

	// The association table for ({Age, Chol}, {BP}).
	at, err := hypermine.BuildAssociationTable(tb, []int{0, 1}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAT({Age,Chol} -> BP): %d rows, ACV %.3f (null ACV %.3f)\n",
		at.NumRows(), at.ACV(), hypermine.NullACV(tb, 2))
	for row := 0; row < at.NumRows(); row++ {
		if at.Support(row) == 0 {
			continue
		}
		best, _ := at.Best(row)
		fmt.Printf("  row %2d: supp %.3f -> most frequent BP code %d (conf %.2f)\n",
			row, at.Support(row), best, at.Confidence(row))
	}
}
