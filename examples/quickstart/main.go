// Quickstart: mine associations in the paper's personal-interest
// database (Tables 3.5/3.6) through the public API — rules, the
// association hypergraph, and a prediction.
package main

import (
	"fmt"
	"log"

	"hypermine"
)

func main() {
	// The discretized personal-interest database of Table 3.6:
	// attributes read, play, music, eat; values l=1, m=2, h=3.
	tb, err := hypermine.TableFromRows(
		[]string{"read", "play", "music", "eat"}, 3,
		[][]hypermine.Value{
			{3, 3, 1, 2},
			{2, 3, 2, 2},
			{1, 1, 3, 3},
			{2, 1, 3, 2},
			{3, 3, 1, 2},
			{3, 3, 2, 2},
			{2, 2, 2, 2},
			{3, 3, 1, 3},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Example 3.5's rule: high read + high play => low music.
	x := []hypermine.Item{{Attr: 0, Val: 3}, {Attr: 1, Val: 3}}
	rule := hypermine.Rule{X: x, Y: []hypermine.Item{{Attr: 2, Val: 1}}}
	fmt.Printf("Supp({read=h, play=h})          = %.3f (paper: 0.5)\n", hypermine.Support(tb, x))
	fmt.Printf("Conf(read=h, play=h => music=l) = %.3f (paper: 0.75)\n", hypermine.Confidence(tb, rule))

	// Build the association hypergraph (gamma = 1: admit everything
	// at least as good as the trivial predictor).
	model, err := hypermine.Build(tb, hypermine.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	st := model.H.EdgeStats()
	fmt.Printf("\nassociation hypergraph: %d directed edges, %d 2-to-1 hyperedges\n",
		st.DirectedEdges, st.TwoToOne)
	for _, e := range model.H.Edges() {
		if !e.IsTwoToOne() || e.Head[0] != 2 {
			continue
		}
		fmt.Printf("  {%s, %s} -> music  ACV %.3f\n",
			tb.AttrName(e.Tail[0]), tb.AttrName(e.Tail[1]), e.Weight)
	}

	// Predict music interest from read and play.
	abc, err := hypermine.NewClassifier(model, []int{0, 1}, []int{2, 3})
	if err != nil {
		log.Fatal(err)
	}
	pred, conf, err := abc.Predict([]hypermine.Value{3, 3}, 2)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"low", "moderate", "high"}
	fmt.Printf("\npredicted music interest for an avid reader+player: %s (confidence %.2f)\n",
		names[pred-1], conf)
}
