// Market-basket (the paper's §1.1 motivating domain): mine the same
// transactional data with the classical Apriori baseline and with the
// directed-hypergraph model, and contrast what each surfaces.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypermine"
)

func main() {
	// Synthetic transactions over six items (1=absent, 2=present):
	// beer is bought when milk AND diapers are both bought (plus
	// noise); bread and butter co-occur; eggs are independent.
	rng := rand.New(rand.NewSource(11))
	items := []string{"milk", "diapers", "beer", "bread", "butter", "eggs"}
	tb, err := hypermine.NewTable(items, 2)
	if err != nil {
		log.Fatal(err)
	}
	flip := func(p float64) hypermine.Value {
		if rng.Float64() < p {
			return 2
		}
		return 1
	}
	for i := 0; i < 1000; i++ {
		milk := flip(0.6)
		diapers := flip(0.5)
		beer := hypermine.Value(1)
		if milk == 2 && diapers == 2 {
			beer = flip(0.8)
		} else {
			beer = flip(0.1)
		}
		bread := flip(0.5)
		butter := bread
		if rng.Float64() < 0.15 {
			butter = flip(0.5)
		}
		if err := tb.AppendRow([]hypermine.Value{milk, diapers, beer, bread, butter, flip(0.4)}); err != nil {
			log.Fatal(err)
		}
	}

	// --- Classical Apriori baseline ---
	rules, err := hypermine.MineClassicRules(tb,
		hypermine.AprioriOptions{MinSupport: 0.2, MaxLen: 3}, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Apriori: %d rules at supp>=0.2, conf>=0.7; top 5:\n", len(rules))
	for i, r := range rules {
		if i == 5 {
			break
		}
		fmt.Printf("  %-44s supp=%.2f conf=%.2f lift=%.2f\n",
			hypermine.FormatRule(tb, hypermine.Rule{X: r.X, Y: r.Y}), r.Support, r.Confidence, r.Lift)
	}

	// --- Directed-hypergraph model ---
	model, err := hypermine.Build(tb, hypermine.Config{GammaEdge: 1.02, GammaPair: 1.02})
	if err != nil {
		log.Fatal(err)
	}
	beer := tb.AttrIndex("beer")
	fmt.Printf("\nassociation hypergraph: %d edges; strongest predictors of beer:\n", model.H.NumEdges())
	bestW, bestIdx := -1.0, -1
	for _, ei := range model.H.In(beer) {
		e := model.H.Edge(int(ei))
		if e.Weight > bestW {
			bestW, bestIdx = e.Weight, int(ei)
		}
	}
	if bestIdx >= 0 {
		e := model.H.Edge(bestIdx)
		names := ""
		for i, t := range e.Tail {
			if i > 0 {
				names += "+"
			}
			names += tb.AttrName(t)
		}
		fmt.Printf("  %s -> beer  ACV %.3f (null baseline %.3f)\n",
			names, e.Weight, hypermine.NullACV(tb, beer))
	}

	// The hypergraph's AT answers "what does each basket imply",
	// value by value — including the *absence* rule Apriori's
	// present-items-only view would express awkwardly.
	at, err := hypermine.BuildAssociationTable(tb, []int{0, 1}, beer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAT({milk,diapers} -> beer):")
	labels := []string{"absent", "present"}
	for row := 0; row < at.NumRows(); row++ {
		if at.Support(row) == 0 {
			continue
		}
		best, _ := at.Best(row)
		fmt.Printf("  milk=%-7s diapers=%-7s -> beer %s (supp %.2f, conf %.2f)\n",
			labels[(row/2)%2], labels[row%2], labels[best-1], at.Support(row), at.Confidence(row))
	}

	// Leading items: a dominator of the item graph.
	dom, err := hypermine.LeadingIndicators(model.H, nil, hypermine.DominatorOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("\nleading items (dominator):")
	for _, v := range dom.DomSet {
		fmt.Printf(" %s", tb.AttrName(v))
	}
	fmt.Printf("  (covers %.0f%% of items)\n", 100*dom.CoverageFraction())
}
