// Serving: a worked end-to-end client of the hypermined subsystem.
// It mines a model from a synthetic market universe, saves it as a
// binary snapshot, boots the query server in-process on loopback, and
// then talks to it exactly as a remote client would: model listing,
// classification (single and batch), similarity ranking, rule mining,
// a hot reload via snapshot upload, and /stats. It closes with an
// overload demo: the same registry behind an admission controller
// with a tiny per-tenant budget, and a client that honors the
// Retry-After advertised on 429/503 instead of hammering the server.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"time"

	"hypermine"
)

func main() {
	// 1. Mine a model: synthetic S&P-style universe -> discretized
	// table -> association hypergraph.
	gen := hypermine.DefaultGenConfig()
	gen.NumSeries = 24
	gen.NumDays = 500
	u, err := hypermine.Generate(gen)
	if err != nil {
		log.Fatal(err)
	}
	tb, _, err := u.BuildTable(3)
	if err != nil {
		log.Fatal(err)
	}
	model, err := hypermine.Build(tb, hypermine.C1())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Snapshot it — the binary serving format `hypermine model
	// save` and hypermined share.
	var snap bytes.Buffer
	if err := hypermine.WriteModelSnapshot(&snap, model, hypermine.SaveOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d bytes for %d edges over %d attributes\n",
		snap.Len(), model.H.NumEdges(), model.Table.NumAttrs())

	// 3. Boot the server: registry + HTTP handler on loopback.
	reg := hypermine.NewModelRegistry(hypermine.RegistryOptions{})
	if _, err := reg.Load("spx", model); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, hypermine.NewQueryServer(reg).Handler()) }()
	base := "http://" + ln.Addr().String()

	// 4. Discover the model: dominator (the classifier's inputs) and
	// targets (what it can predict).
	var detail struct {
		Edges     int      `json:"edges"`
		Dominator []string `json:"dominator"`
		Targets   []string `json:"targets"`
		Coverage  float64  `json:"coverage"`
		K         int      `json:"k"`
	}
	getJSON(base+"/v1/models/spx", &detail)
	fmt.Printf("serving model spx: %d edges, dominator %v covering %.0f%%\n",
		detail.Edges, detail.Dominator, 100*detail.Coverage)

	if len(detail.Targets) == 0 {
		log.Fatal("dominator covers no targets on this universe")
	}

	// 5. Classify: "given today's moves of the leading indicators,
	// what did target stocks most likely do?"
	values := map[string]int{}
	for i, a := range detail.Dominator {
		values[a] = 1 + i%detail.K
	}
	var cls struct {
		Target     string  `json:"target"`
		Value      int     `json:"value"`
		Confidence float64 `json:"confidence"`
	}
	postJSON(base+"/v1/models/spx/classify",
		map[string]any{"target": detail.Targets[0], "values": values}, &cls)
	fmt.Printf("classify %s given %v -> value %d (confidence %.2f)\n",
		cls.Target, values, cls.Value, cls.Confidence)

	// Batch form: rows carry dominator values in dominator order.
	rows := [][]int{}
	for r := 0; r < 3; r++ {
		row := make([]int, len(detail.Dominator))
		for j := range row {
			row[j] = 1 + (r+j)%detail.K
		}
		rows = append(rows, row)
	}
	var batch struct {
		Values []int `json:"values"`
	}
	postJSON(base+"/v1/models/spx/classify:batch",
		map[string]any{"target": detail.Targets[0], "rows": rows}, &batch)
	fmt.Printf("batch of %d -> %v\n", len(rows), batch.Values)

	// 6. Similarity ranking against the cached similarity graph.
	var sim struct {
		Neighbors []struct {
			Name     string  `json:"name"`
			Distance float64 `json:"distance"`
		} `json:"neighbors"`
	}
	getJSON(base+"/v1/models/spx/similar?a="+detail.Dominator[0]+"&top=3", &sim)
	fmt.Printf("most similar to %s:", detail.Dominator[0])
	for _, n := range sim.Neighbors {
		fmt.Printf(" %s(d=%.3f)", n.Name, n.Distance)
	}
	fmt.Println()

	// 7. Rules for a target attribute.
	var rules struct {
		Rules []struct {
			Rule       string  `json:"rule"`
			Confidence float64 `json:"confidence"`
		} `json:"rules"`
	}
	getJSON(base+"/v1/models/spx/rules?head="+detail.Targets[0]+"&top=2", &rules)
	for _, r := range rules.Rules {
		fmt.Printf("rule: %s (conf %.2f)\n", r.Rule, r.Confidence)
	}

	// 8. Hot reload: PUT the snapshot — answers stay bit-identical,
	// the generation bumps, and in-flight readers drain gracefully.
	req, err := http.NewRequest(http.MethodPut, base+"/v1/models/spx", bytes.NewReader(snap.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var put struct {
		Generation int  `json:"generation"`
		Swapped    bool `json:"swapped"`
	}
	decode(resp, &put)
	fmt.Printf("hot reload: swapped=%v generation=%d\n", put.Swapped, put.Generation)

	var cls2 struct {
		Value int `json:"value"`
	}
	postJSON(base+"/v1/models/spx/classify",
		map[string]any{"target": detail.Targets[0], "values": values}, &cls2)
	fmt.Printf("post-reload classify agrees: %v\n", cls2.Value == cls.Value)

	// 9. Stats.
	var stats struct {
		Queries  int64 `json:"queries"`
		Registry struct {
			Swaps int64 `json:"swaps"`
		} `json:"registry"`
	}
	getJSON(base+"/stats", &stats)
	fmt.Printf("served %d queries, %d hot swap(s)\n", stats.Queries, stats.Registry.Swaps)

	// 10. Overload and backoff: the same registry behind a second
	// server with admission control in front — a deliberately tiny
	// per-tenant budget — and a client that honors Retry-After.
	// Admitted answers are identical to the unprotected server's;
	// shed ones arrive instantly as 429 and say when to come back.
	ctl := hypermine.NewAdmissionController(hypermine.AdmissionConfig{
		TenantRate:  2, // two requests/second steady state ...
		TenantBurst: 2, // ... after an initial burst of two
	})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		_ = http.Serve(ln2, hypermine.NewQueryServer(reg, hypermine.WithAdmission(ctl)).Handler())
	}()
	guarded := "http://" + ln2.Addr().String()

	body, err := json.Marshal(map[string]any{"target": detail.Targets[0], "values": values})
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		var got struct {
			Value int `json:"value"`
		}
		backoffs, err := postWithBackoff(guarded+"/v1/models/spx/classify", body, &got)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("guarded classify #%d -> value %d (agrees=%v, backoffs=%d)\n",
			i, got.Value, got.Value == cls.Value, backoffs)
	}
	adm := ctl.Stats()
	for _, t := range adm.Tenants {
		fmt.Printf("tenant %q: admitted=%d shed=%d\n", t.Name, t.Admitted, t.Shed)
	}
}

// postWithBackoff POSTs body and, when the server sheds the request
// with 429 (rate/queue pressure) or 503 (open breaker), honors the
// Retry-After header before trying again. It returns how many
// backoffs were taken.
func postWithBackoff(url string, body []byte, out any) (backoffs int, err error) {
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return backoffs, err
		}
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable {
			secs, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if secs < 1 {
				secs = 1 // a missing or malformed header still backs off
			}
			if attempt >= 5 {
				return backoffs, fmt.Errorf("%s: still shed after %d attempts", url, attempt+1)
			}
			backoffs++
			time.Sleep(time.Duration(secs) * time.Second)
			continue
		}
		decode(resp, out)
		return backoffs, nil
	}
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func postJSON(url string, body, out any) {
	js, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		log.Fatal(err)
	}
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		log.Fatalf("%s: %d: %s", resp.Request.URL, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
