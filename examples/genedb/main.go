// Gene database (bioinformatics domain, Tables 3.3/3.4 and the
// Chapter 6 future-work scenario): discretize expression values into
// under/steady/over, mine gene interactions, and predict a disease
// status from gene expressions with a head-restricted classifier.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypermine"
)

func main() {
	partOne()
	partTwo()
}

// partOne reproduces Example 3.4 on the eight-patient gene database.
func partOne() {
	raw := [][]float64{
		{54.23, 541.21, 321.67, 123.87, 388.44, 399.98, 414.33, 855.78},  // Gene 1
		{66.22, 324.21, 125.98, 95.54, 129.33, 121.54, 134.73, 125.93},   // Gene 2
		{342.32, 165.21, 139.43, 105.88, 135.65, 117.55, 145.32, 155.76}, // Gene 3
		{422.21, 852.21, 71.11, 678.65, 754.32, 719.33, 733.22, 789.43},  // Gene 4
	}
	tb, err := hypermine.DiscretizeColumns(
		[]string{"G1", "G2", "G3", "G4"}, raw,
		hypermine.EquiWidth{Bins: 3, Min: 0, Max: 999})
	if err != nil {
		log.Fatal(err)
	}
	// Example 3.4: G2 and G3 under-expressed => G4 over-expressed.
	x := []hypermine.Item{{Attr: 1, Val: 1}, {Attr: 2, Val: 1}}
	rule := hypermine.Rule{X: x, Y: []hypermine.Item{{Attr: 3, Val: 3}}}
	fmt.Printf("Supp(G2 down, G3 down)       = %.3f (paper: 0.875)\n", hypermine.Support(tb, x))
	fmt.Printf("Conf(... => G4 up)           = %.3f (paper: 0.857)\n", hypermine.Confidence(tb, rule))
}

// partTwo implements the Chapter 6 proposal: a gene database that also
// records a disease status; only hyperedges whose head is the disease
// enter the model, and the classifier predicts disease from a handful
// of gene expressions.
func partTwo() {
	rng := rand.New(rand.NewSource(7))
	const patients = 500
	attrs := []string{"geneA", "geneB", "geneC", "geneD", "disease"}
	tb, err := hypermine.NewTable(attrs, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < patients; i++ {
		a := hypermine.Value(1 + rng.Intn(3))
		b := hypermine.Value(1 + rng.Intn(3))
		c := hypermine.Value(1 + rng.Intn(3))
		d := hypermine.Value(1 + rng.Intn(3))
		// Disease is driven by the (geneA, geneB) combination with
		// some noise: present (=2) when both are over-expressed.
		disease := hypermine.Value(1)
		if a == 3 && b == 3 || rng.Intn(12) == 0 {
			disease = 2
		}
		// The value set is {1,2,3}; disease only uses {1,2}.
		if err := tb.AppendRow([]hypermine.Value{a, b, c, d, disease}); err != nil {
			log.Fatal(err)
		}
	}

	model, err := hypermine.Build(tb, hypermine.Config{GammaEdge: 1.0, GammaPair: 1.0})
	if err != nil {
		log.Fatal(err)
	}
	diseaseAttr := tb.AttrIndex("disease")
	kept := 0
	for _, e := range model.H.Edges() {
		if e.Head[0] == diseaseAttr {
			kept++
		}
	}
	fmt.Printf("\ndisease-prediction model: %d of %d hyperedges point at the disease attribute\n",
		kept, model.H.NumEdges())

	abc, err := hypermine.NewClassifier(model, []int{0, 1, 2, 3}, []int{diseaseAttr})
	if err != nil {
		log.Fatal(err)
	}
	conf, err := abc.Evaluate(tb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disease classification confidence (in-sample): %.3f\n", conf[diseaseAttr])

	pred, pc, err := abc.Predict([]hypermine.Value{3, 3, 1, 2}, diseaseAttr)
	if err != nil {
		log.Fatal(err)
	}
	status := map[hypermine.Value]string{1: "absent", 2: "present"}
	fmt.Printf("patient with geneA=up geneB=up: disease %s (confidence %.2f)\n", status[pred], pc)
}
