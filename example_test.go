package hypermine_test

import (
	"fmt"

	"hypermine"
)

// Example mines the paper's personal-interest database (Table 3.6)
// and reads off the Example 3.5 rule.
func Example() {
	tb, _ := hypermine.TableFromRows(
		[]string{"read", "play", "music", "eat"}, 3,
		[][]hypermine.Value{
			{3, 3, 1, 2}, {2, 3, 2, 2}, {1, 1, 3, 3}, {2, 1, 3, 2},
			{3, 3, 1, 2}, {3, 3, 2, 2}, {2, 2, 2, 2}, {3, 3, 1, 3},
		})
	x := []hypermine.Item{{Attr: 0, Val: 3}, {Attr: 1, Val: 3}}
	rule := hypermine.Rule{X: x, Y: []hypermine.Item{{Attr: 2, Val: 1}}}
	fmt.Printf("Supp = %.3f\n", hypermine.Support(tb, x))
	fmt.Printf("Conf = %.2f\n", hypermine.Confidence(tb, rule))
	// Output:
	// Supp = 0.500
	// Conf = 0.75
}

// ExampleBuild constructs an association hypergraph and inspects the
// association confidence value of a 2-to-1 hyperedge.
func ExampleBuild() {
	tb, _ := hypermine.TableFromRows(
		[]string{"A", "B", "X"}, 2,
		[][]hypermine.Value{
			{1, 1, 1}, {1, 2, 2}, {2, 1, 2}, {2, 2, 1},
			{1, 1, 1}, {1, 2, 2}, {2, 1, 2}, {2, 2, 1},
		})
	model, _ := hypermine.Build(tb, hypermine.Config{GammaEdge: 1.0, GammaPair: 1.0})
	// X = A xor B: the pair determines X exactly, singles know nothing.
	fmt.Printf("ACV({A,B} -> X) = %.2f\n", model.H.Weight([]int{0, 1}, []int{2}))
	fmt.Printf("ACV({A} -> X)   = %.2f\n", model.EdgeACVAt(0, 2))
	// Output:
	// ACV({A,B} -> X) = 1.00
	// ACV({A} -> X)   = 0.50
}

// ExampleLeadingIndicators computes a dominator for a small hand-built
// hypergraph (Definition 4.1).
func ExampleLeadingIndicators() {
	h, _ := hypermine.NewHypergraph([]string{"a", "b", "c", "d"})
	_ = h.AddEdge([]int{0}, []int{1}, 0.9)    // a -> b
	_ = h.AddEdge([]int{0, 1}, []int{2}, 0.8) // {a,b} -> c
	_ = h.AddEdge([]int{2}, []int{3}, 0.7)    // c -> d
	dom, _ := hypermine.LeadingIndicators(h, nil, hypermine.DominatorOptions{Complete: true})
	names := []string{}
	for _, v := range dom.DomSet {
		names = append(names, h.VertexName(v))
	}
	fmt.Println(names, dom.TargetCovered, "of", dom.TargetSize)
	// Output:
	// [a b c] 4 of 4
}

// ExampleFrequentItemsets runs the classical Apriori baseline on a
// market-basket table (1 = absent, 2 = present).
func ExampleFrequentItemsets() {
	tb, _ := hypermine.TableFromRows(
		[]string{"milk", "diapers", "beer"}, 2,
		[][]hypermine.Value{
			{2, 2, 2}, {2, 2, 1}, {2, 1, 2}, {1, 2, 2}, {2, 2, 2}, {2, 2, 2},
		})
	freq, _ := hypermine.FrequentItemsets(tb, hypermine.AprioriOptions{MinSupport: 0.6})
	for _, f := range freq {
		if len(f.Items) == 2 {
			fmt.Printf("%s supp=%.2f\n", hypermine.FormatRule(tb,
				hypermine.Rule{X: f.Items[:1], Y: f.Items[1:]}), f.Support)
		}
	}
	// Output:
	// {milk=2} => {diapers=2} supp=0.67
	// {milk=2} => {beer=2} supp=0.67
	// {diapers=2} => {beer=2} supp=0.67
}
